"""Tests for the ping-pong and clock benchmarks."""

import numpy as np
import pytest

from repro.apps.clockbench import (
    ClockBenchConfig,
    make_clockbench_app,
    pair_schedule,
    partner_of,
)
from repro.apps.pingpong import PingPongResults, make_pingpong_app
from repro.errors import ConfigurationError
from repro.sim.mpi import World
from repro.topology.metacomputer import Placement
from repro.topology.presets import single_cluster, uniform_metacomputer


def _run(mc, nprocs, app, seed=0):
    placement = Placement.block(mc, nprocs)
    world = World(mc, placement, rng=np.random.default_rng(seed))
    world.launch(app, seed=seed)
    return world.run()


class TestPingPong:
    def test_measures_latency_scale(self):
        mc = single_cluster(node_count=2, cpus_per_node=1, internal_latency_s=2e-5)
        results = PingPongResults()
        _run(mc, 2, make_pingpong_app(results, [(0, 1)], repetitions=100))
        mean = results.mean_s((0, 1))
        # Half-RTT ≈ latency plus a few µs of overhead.
        assert 2e-5 < mean < 4e-5

    def test_external_pair_sees_external_latency(self):
        mc = uniform_metacomputer(
            metahost_count=2, node_count=1, cpus_per_node=1,
            external_latency_s=1e-3, external_congestion_prob=0.0,
        )
        results = PingPongResults()
        _run(mc, 2, make_pingpong_app(results, [(0, 1)], repetitions=50))
        assert results.mean_s((0, 1)) > 9e-4

    def test_multiple_pairs_measured_sequentially(self):
        mc = single_cluster(node_count=4, cpus_per_node=1)
        results = PingPongResults()
        pairs = [(0, 1), (2, 3), (0, 3)]
        _run(mc, 4, make_pingpong_app(results, pairs, repetitions=20))
        assert set(results.samples) == set(pairs)
        for pair in pairs:
            assert len(results.samples[pair]) == 20

    def test_summary_shape(self):
        mc = single_cluster(node_count=2, cpus_per_node=1)
        results = PingPongResults()
        _run(mc, 2, make_pingpong_app(results, [(0, 1)], repetitions=30))
        summary = results.summary()
        mean, std = summary[(0, 1)]
        assert mean > 0 and std >= 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            make_pingpong_app(PingPongResults(), [(0, 0)])
        with pytest.raises(ConfigurationError):
            make_pingpong_app(PingPongResults(), [(0, 1)], repetitions=1)


class TestPairSchedule:
    def test_pairs_are_self_inverse(self):
        n = 8
        for round_index in range(n):
            for i, j in pair_schedule(n, round_index):
                assert partner_of(i, n, round_index) == j
                assert partner_of(j, n, round_index) == i

    def test_every_pair_appears_over_a_cycle(self):
        n = 6
        seen = set()
        for round_index in range(2 * n):
            seen.update(pair_schedule(n, round_index))
        expected = {(i, j) for i in range(n) for j in range(i + 1, n)}
        assert seen == expected

    def test_fixed_point_skipped(self):
        n = 4
        # Round 2: rank 1 pairs with (2-1)%4 = 1 → itself → skipped.
        assert partner_of(1, n, 2) is None
        assert all(i != j for i, j in pair_schedule(n, 2))

    def test_requires_two_processes(self):
        with pytest.raises(ConfigurationError):
            pair_schedule(1, 0)


class TestClockBench:
    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            ClockBenchConfig(rounds=0)
        with pytest.raises(ConfigurationError):
            ClockBenchConfig(inter_round_gap_s=-1.0)

    def test_runs_and_exchanges_messages(self):
        mc = single_cluster(node_count=4, cpus_per_node=1)
        config = ClockBenchConfig(rounds=6, exchanges_per_round=1, inter_round_gap_s=0.01)
        stats = _run(mc, 4, make_clockbench_app(config))
        # Each round has up to n/2 pairs, each exchanging 2 messages.
        assert stats.p2p_messages > 0
        assert stats.p2p_messages <= 6 * 2 * 2

    def test_duration_spans_rounds(self):
        mc = single_cluster(node_count=2, cpus_per_node=1)
        config = ClockBenchConfig(rounds=10, inter_round_gap_s=0.05)
        stats = _run(mc, 2, make_clockbench_app(config))
        assert stats.finish_time >= 0.5
