"""Tests for replay message matching and collective grouping."""

import pytest

from repro.analysis.callpath import CallPathRegistry
from repro.analysis.instances import build_timeline
from repro.analysis.matching import MessageMatcher
from repro.clocks.sync import LinearConverter
from repro.errors import AnalysisError
from repro.ids import Location
from repro.trace.events import (
    CollExitEvent,
    EnterEvent,
    ExitEvent,
    RecvEvent,
    SendEvent,
)
from repro.trace.regions import RegionRegistry


@pytest.fixture
def regions():
    reg = RegionRegistry()
    for name in ("main", "MPI_Send", "MPI_Recv", "MPI_Allreduce"):
        reg.register(name)
    return reg


def _timelines(per_rank_events, regions, machines=None):
    callpaths = CallPathRegistry()
    timelines = {}
    for rank, events in per_rank_events.items():
        machine = 0 if machines is None else machines[rank]
        timelines[rank] = build_timeline(
            rank,
            Location(machine, 0, rank),
            events,
            LinearConverter.identity(),
            callpaths,
            regions,
        )
    return timelines


def _send_events(regions, t0, dest, tag=0, size=64):
    send = regions.id_of("MPI_Send")
    return [
        EnterEvent(t0, send),
        SendEvent(t0 + 0.01, dest, tag, 0, size),
        ExitEvent(t0 + 0.02, send),
    ]


def _recv_events(regions, t0, source, tag=0, size=64, t_done=None):
    recv = regions.id_of("MPI_Recv")
    t_done = t_done if t_done is not None else t0 + 0.1
    return [
        EnterEvent(t0, recv),
        RecvEvent(t_done, source, tag, 0, size),
        ExitEvent(t_done, recv),
    ]


class TestP2PMatching:
    def test_simple_pair(self, regions):
        timelines = _timelines(
            {
                0: _send_events(regions, 0.0, dest=1),
                1: _recv_events(regions, 0.0, source=0),
            },
            regions,
        )
        matcher = MessageMatcher(timelines)
        pairs = list(matcher.matched_pairs())
        assert len(pairs) == 1
        pair = pairs[0]
        assert pair.sender_rank == 0 and pair.receiver_rank == 1
        assert matcher.stats.matched == 1
        assert matcher.stats.unmatched_sends == 0

    def test_fifo_order_per_channel(self, regions):
        sends = (
            _send_events(regions, 0.0, dest=1)
            + _send_events(regions, 1.0, dest=1)
        )
        recvs = (
            _recv_events(regions, 0.0, source=0, t_done=1.5)
            + _recv_events(regions, 1.6, source=0, t_done=2.0)
        )
        timelines = _timelines({0: sends, 1: recvs}, regions)
        pairs = list(MessageMatcher(timelines).matched_pairs())
        assert pairs[0].send.time < pairs[1].send.time
        assert pairs[0].recv.time < pairs[1].recv.time

    def test_tags_separate_channels(self, regions):
        sends = (
            _send_events(regions, 0.0, dest=1, tag=1)
            + _send_events(regions, 1.0, dest=1, tag=2)
        )
        # Receiver consumes tag 2 first.
        recvs = (
            _recv_events(regions, 0.0, source=0, tag=2, t_done=1.5)
            + _recv_events(regions, 1.6, source=0, tag=1, t_done=2.0)
        )
        timelines = _timelines({0: sends, 1: recvs}, regions)
        pairs = list(MessageMatcher(timelines).matched_pairs())
        assert pairs[0].recv.tag == 2 and pairs[0].send.tag == 2
        assert pairs[1].recv.tag == 1

    def test_unmatched_recv_raises(self, regions):
        timelines = _timelines(
            {0: [], 1: _recv_events(regions, 0.0, source=0)}, regions
        )
        with pytest.raises(AnalysisError, match="no matching SEND"):
            list(MessageMatcher(timelines).matched_pairs())

    def test_unmatched_sends_counted(self, regions):
        timelines = _timelines({0: _send_events(regions, 0.0, dest=1), 1: []}, regions)
        matcher = MessageMatcher(timelines)
        list(matcher.matched_pairs())
        assert matcher.stats.unmatched_sends == 1

    def test_grid_predicate(self, regions):
        timelines = _timelines(
            {
                0: _send_events(regions, 0.0, dest=1),
                1: _recv_events(regions, 0.0, source=0),
            },
            regions,
            machines={0: 0, 1: 1},
        )
        pair = next(MessageMatcher(timelines).matched_pairs())
        assert pair.crosses_metahosts

    def test_metadata_bytes_counted(self, regions):
        timelines = _timelines(
            {
                0: _send_events(regions, 0.0, dest=1),
                1: _recv_events(regions, 0.0, source=0),
            },
            regions,
        )
        matcher = MessageMatcher(timelines)
        list(matcher.matched_pairs())
        assert matcher.stats.metadata_bytes > 0


class TestCollectiveGrouping:
    def _coll_events(self, regions, t0, t1, comm=0, root=0):
        region = regions.id_of("MPI_Allreduce")
        return [
            EnterEvent(t0, region),
            CollExitEvent(t1, region, comm, root, 8, 8),
            ExitEvent(t1, region),
        ]

    def test_instances_grouped_by_order(self, regions):
        events = {
            0: self._coll_events(regions, 0.0, 1.0)
            + self._coll_events(regions, 2.0, 3.0),
            1: self._coll_events(regions, 0.5, 1.0)
            + self._coll_events(regions, 2.5, 3.0),
        }
        timelines = _timelines(events, regions)
        instances = MessageMatcher(timelines).collective_instances()
        assert len(instances) == 2
        assert instances[0].size == 2
        assert instances[0].index == 0 and instances[1].index == 1
        assert instances[0].last_enter == pytest.approx(0.5)

    def test_spans_metahosts(self, regions):
        events = {
            0: self._coll_events(regions, 0.0, 1.0),
            1: self._coll_events(regions, 0.0, 1.0),
        }
        same = MessageMatcher(_timelines(events, regions)).collective_instances()
        assert not same[0].spans_metahosts
        spanning = MessageMatcher(
            _timelines(events, regions, machines={0: 0, 1: 1})
        ).collective_instances()
        assert spanning[0].spans_metahosts

    def test_region_mismatch_rejected(self, regions):
        send = regions.id_of("MPI_Send")
        bad = [
            EnterEvent(0.0, send),
            CollExitEvent(1.0, send, 0, 0, 0, 0),
            ExitEvent(1.0, send),
        ]
        events = {0: self._coll_events(regions, 0.0, 1.0), 1: bad}
        with pytest.raises(AnalysisError, match="mismatch"):
            MessageMatcher(_timelines(events, regions)).collective_instances()

    def test_different_comms_independent(self, regions):
        events = {
            0: self._coll_events(regions, 0.0, 1.0, comm=0)
            + self._coll_events(regions, 2.0, 3.0, comm=1),
            1: self._coll_events(regions, 0.0, 1.0, comm=0)
            + self._coll_events(regions, 2.0, 3.0, comm=1),
        }
        instances = MessageMatcher(_timelines(events, regions)).collective_instances()
        assert {(i.comm, i.index) for i in instances} == {(0, 0), (1, 0)}
