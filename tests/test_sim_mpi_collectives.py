"""Tests for collective operations through the world."""

import numpy as np
import pytest

from repro.errors import DeadlockError, MPIUsageError
from repro.sim.mpi import World
from repro.topology.metacomputer import Placement
from repro.topology.presets import single_cluster
from tests.test_sim_mpi_p2p import run_world


@pytest.fixture
def mc():
    return single_cluster(node_count=4, cpus_per_node=2)


class TestBarrier:
    def test_barrier_synchronizes(self, mc):
        after = {}

        def app(ctx):
            yield ctx.compute(0.1 * ctx.rank)
            yield ctx.comm.barrier()
            after[ctx.rank] = ctx.now

        run_world(mc, 4, app)
        # Nobody leaves before the slowest rank entered (t = 0.3).
        assert all(t >= 0.3 for t in after.values())
        assert max(after.values()) - min(after.values()) < 1e-6

    def test_multiple_barriers_ordered(self, mc):
        def app(ctx):
            for _ in range(5):
                yield ctx.comm.barrier()

        _, stats = run_world(mc, 4, app)
        assert stats.collectives == 5


class TestDataMovement:
    def test_bcast_delivers_root_data(self, mc):
        got = {}

        def app(ctx):
            value = yield ctx.comm.bcast(64, root=2, data="payload" if ctx.rank == 2 else None)
            got[ctx.rank] = value

        run_world(mc, 4, app)
        assert all(v == "payload" for v in got.values())

    def test_allreduce_returns_all_contributions(self, mc):
        got = {}

        def app(ctx):
            contributions = yield ctx.comm.allreduce(8, data=ctx.rank * 10)
            got[ctx.rank] = contributions

        run_world(mc, 3, app)
        for rank in range(3):
            assert got[rank] == {0: 0, 1: 10, 2: 20}

    def test_reduce_only_root_sees_data(self, mc):
        got = {}

        def app(ctx):
            result = yield ctx.comm.reduce(8, root=1, data=ctx.rank)
            got[ctx.rank] = result

        run_world(mc, 3, app)
        assert got[1] == {0: 0, 1: 1, 2: 2}
        assert got[0] is None and got[2] is None

    def test_gather_scatter_alltoall_complete(self, mc):
        def app(ctx):
            yield ctx.comm.gather(128, root=0, data=ctx.rank)
            yield ctx.comm.scatter(128, root=0, data="chunks" if ctx.rank == 0 else None)
            yield ctx.comm.allgather(64, data=ctx.rank)
            yield ctx.comm.alltoall(64, data=ctx.rank)

        _, stats = run_world(mc, 4, app)
        assert stats.collectives == 4


class TestSubcommunicators:
    def _world(self, mc, app, subcomm_ranks):
        placement = Placement.block(mc, 4)
        world = World(mc, placement, rng=np.random.default_rng(0))
        world.new_communicator("sub", subcomm_ranks)
        world.launch(app, seed=0)
        world.run()
        return world

    def test_subcomm_collective_only_involves_members(self, mc):
        after = {}

        def app(ctx):
            sub = ctx.get_comm("sub")
            if sub is not None:
                yield ctx.compute(0.1 * sub.rank)
                yield sub.barrier()
                after[ctx.rank] = ctx.now
            else:
                yield ctx.compute(0.01)

        self._world(mc, app, [1, 3])
        assert set(after) == {1, 3}

    def test_subcomm_rank_translation(self, mc):
        seen = {}

        def app(ctx):
            sub = ctx.get_comm("sub")
            if sub is None:
                return
            seen[ctx.rank] = (sub.rank, sub.size)
            if sub.rank == 0:
                yield sub.send(1, 64, data="within-sub")
            else:
                msg = yield sub.recv(0)
                seen["msg_source_global"] = msg.source_global

        self._world(mc, app, [2, 3])
        assert seen[2] == (0, 2)
        assert seen[3] == (1, 2)
        assert seen["msg_source_global"] == 2

    def test_nonmember_cannot_use_subcomm(self, mc):
        def app(ctx):
            comm = ctx.get_comm("sub")
            if ctx.rank == 0:
                assert comm is None
            yield ctx.comm.barrier()

        self._world(mc, app, [1, 2])

    def test_duplicate_comm_name_rejected(self, mc):
        placement = Placement.block(mc, 2)
        world = World(mc, placement, rng=np.random.default_rng(0))
        world.new_communicator("x", [0])
        with pytest.raises(MPIUsageError):
            world.new_communicator("x", [1])


class TestCollectiveErrors:
    def test_operation_mismatch_detected(self, mc):
        def app(ctx):
            if ctx.rank == 0:
                yield ctx.comm.barrier()
            else:
                yield ctx.comm.allreduce(8)

        with pytest.raises((MPIUsageError, DeadlockError)):
            run_world(mc, 2, app)

    def test_root_mismatch_detected(self, mc):
        def app(ctx):
            yield ctx.comm.bcast(8, root=ctx.rank)

        with pytest.raises(MPIUsageError):
            run_world(mc, 2, app)

    def test_partial_collective_deadlocks(self, mc):
        def app(ctx):
            if ctx.rank != 0:
                yield ctx.comm.barrier()

        with pytest.raises(DeadlockError):
            run_world(mc, 3, app)
