"""The chaos package: the severity ladder, seed parsing, and one episode.

The full matrix (``repro chaos --seeds 0..4``) runs in CI; here we pin
the deterministic pieces — ladder shape, seed→schedule mapping, the CLI's
seed-spec grammar — and run the two cheapest episodes end to end (the
control and one degrading level) so the harness itself is covered by
tier-1.
"""

from __future__ import annotations

import pytest

from repro.chaos import run_chaos, run_episode, schedule_for_seed
from repro.cli import _parse_seeds
from repro.faults.plan import TraceCorruption


class TestLadder:
    def test_level_is_seed_mod_five(self):
        for seed in range(10):
            assert schedule_for_seed(seed).level == seed % 5
            assert schedule_for_seed(seed).seed == seed

    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            schedule_for_seed(-1)

    def test_control_episode_is_empty(self):
        control = schedule_for_seed(0)
        assert control.empty
        assert not control.degrades_traces
        assert control.describe() == "no chaos"

    def test_process_chaos_alone_does_not_degrade(self):
        # L1 kills a worker but never touches trace bytes: the analysis
        # must stay in exact (non-degraded) mode.
        kill_only = schedule_for_seed(1)
        assert not kill_only.empty
        assert kill_only.kill_workers == 1
        assert not kill_only.degrades_traces

    def test_corruption_levels_degrade(self):
        for seed in (2, 3, 4):
            schedule = schedule_for_seed(seed)
            assert schedule.degrades_traces
            assert schedule.fault_plan.of_type(TraceCorruption)

    def test_top_level_composes_everything(self):
        worst = schedule_for_seed(4)
        assert worst.kill_workers and worst.stall_workers
        assert worst.torn_tail_bytes > 0
        assert worst.deadline_s is not None
        text = worst.describe()
        for fragment in ("kill", "stall", "journal", "deadline"):
            assert fragment in text

    def test_schedule_is_frozen(self):
        with pytest.raises(Exception):
            schedule_for_seed(0).kill_workers = 9


class TestSeedSpec:
    def test_range(self):
        assert _parse_seeds("0..4") == [0, 1, 2, 3, 4]

    def test_comma_list(self):
        assert _parse_seeds("7, 2,5") == [7, 2, 5]

    def test_single(self):
        assert _parse_seeds("3") == [3]

    def test_stray_commas_tolerated(self):
        assert _parse_seeds("1,,2") == [1, 2]

    def test_invalid(self):
        for bad in ("", "4..0", "a..b"):
            with pytest.raises(ValueError):
                _parse_seeds(bad)


class TestEpisodes:
    def test_control_episode_is_byte_identical(self, tmp_path):
        report = run_chaos([0], jobs=2, workdir=str(tmp_path))
        assert report.ok, report.violations
        (episode,) = report.episodes
        assert episode.byte_identical is True
        assert episode.interrupted is None
        assert episode.complete_ranks == episode.total_ranks

    def test_degrading_episode_loses_completeness_honestly(self, tmp_path):
        episode = run_episode(
            schedule_for_seed(2), jobs=2, workdir=str(tmp_path)
        )
        assert not episode.violations, episode.violations
        # Corrupted traces: diverged from the clean baseline, and the
        # damage shows up as lost per-rank completeness.
        assert episode.byte_identical is False
        assert episode.complete_ranks < episode.total_ranks
        assert "L2" in episode.summary()
