"""Archive integrity: block checksums, manifests, verification, salvage.

The contract under test: every trace byte is covered by exactly one
record-aligned checksum block, damage is localized to the block (never
crashing a reader), degraded replay salvages checksum-failed traces, and
every archive write is atomic (no ``*.tmp`` debris, never a half-written
file under its final name).
"""

from __future__ import annotations

import warnings
import zlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.replay import RankCompleteness, ReplayAnalyzer
from repro.api import AnalysisRequest, analyze, simulate, verify_archives
from repro.apps.imbalance import make_imbalance_app
from repro.errors import ArchiveError
from repro.faults import FaultPlan, TraceCorruption, TraceTruncation
from repro.fs.filesystem import MountNamespace, SimFileSystem
from repro.topology.metacomputer import Placement
from repro.topology.presets import uniform_metacomputer
from repro.trace.archive import (
    MANIFEST_FILE,
    ArchiveManifest,
    ArchiveReader,
    ArchiveWriter,
    TraceManifestEntry,
    salvage_checked,
    trace_filename,
)
from repro.trace.encoding import (
    CHECKSUM_BLOCK_BYTES,
    HEADER_SIZE,
    block_table,
    encode_events,
    salvage_events,
)
from repro.trace.events import EnterEvent, ExitEvent, RecvEvent, SendEvent

from tests.test_trace_archive import _definitions, _namespace, _sync_data

NPROCS = 4
_CACHE = {}


def _events(n: int = 400):
    events = [EnterEvent(0.0, 0)]
    for i in range(n):
        t = 0.01 * (i + 1)
        if i % 2:
            events.append(SendEvent(t, 1, 0, 0, 64))
        else:
            events.append(RecvEvent(t, 1, 0, 0, 64))
    events.append(ExitEvent(0.01 * (n + 2), 0))
    return events


def _blob(n: int = 400, rank: int = 0) -> bytes:
    return encode_events(rank, _events(n))


# -- the checksum block table --------------------------------------------------


class TestBlockTable:
    def test_covers_every_byte_exactly_once(self):
        blob = _blob()
        table = block_table(blob)
        offset = 0
        for start, length, crc in table:
            assert start == offset
            assert length > 0
            assert crc == zlib.crc32(blob[start : start + length])
            offset += length
        assert offset == len(blob)

    def test_blocks_are_record_aligned(self):
        # Re-decoding each block boundary suffix must still parse: cuts
        # never land inside a record (so a bad block loses whole records,
        # not sync with the stream).
        blob = _blob()
        table = block_table(blob)
        for start, _length, _crc in table[1:]:
            # A boundary is valid iff salvage from the header up to it is
            # byte-exact (the encoder's record stream splits there).
            salvaged = salvage_events(blob[:start])
            assert salvaged.bytes_decoded == start

    def test_block_size_near_target(self):
        blob = _blob(2000)
        table = block_table(blob)
        assert len(table) > 1
        for _start, length, _crc in table[:-1]:
            assert length >= CHECKSUM_BLOCK_BYTES

    def test_empty_data(self):
        assert block_table(b"") == []

    def test_tiny_blob_single_block(self):
        blob = _blob(1)
        assert len(block_table(blob)) == 1

    def test_bad_block_size_rejected(self):
        with pytest.raises(ValueError):
            block_table(b"x", block_bytes=0)


class TestManifest:
    def test_json_round_trip(self):
        manifest = ArchiveManifest()
        blob = _blob()
        manifest.entries[3] = TraceManifestEntry.for_blob(3, blob)
        restored = ArchiveManifest.from_json(manifest.to_json())
        assert restored.entries == manifest.entries

    def test_malformed_rejected(self):
        with pytest.raises(ArchiveError):
            ArchiveManifest.from_json("{not json")
        with pytest.raises(ArchiveError):
            ArchiveManifest.from_json('{"version": 1}')


# -- writer atomicity ----------------------------------------------------------


class TestAtomicWrites:
    def test_no_tmp_debris_after_archiving(self):
        ns = _namespace()
        writer = ArchiveWriter(ns, "/work/exp")
        writer.write_definitions(_definitions())
        writer.write_sync_data(_sync_data())
        writer.write_trace(0, _events(50))
        assert writer.write_manifest() == 1
        names = ns.list_dir("/work/exp")
        assert MANIFEST_FILE in names
        assert not [n for n in names if n.endswith(".tmp")]

    def test_atomic_write_replaces_existing(self):
        ns = _namespace()
        ns.write_file("/work/exp/x", b"old")
        ns.write_file_atomic("/work/exp/x", b"new")
        assert ns.read_file("/work/exp/x") == b"new"
        assert not ns.is_file("/work/exp/x.tmp")


# -- verification --------------------------------------------------------------


def _archive_with_trace(blob: bytes, rank: int = 0):
    ns = _namespace()
    writer = ArchiveWriter(ns, "/work/exp")
    writer.write_definitions(_definitions())
    writer.write_trace_blob(rank, blob)
    writer.write_manifest()
    return ns, ArchiveReader(ns, "/work/exp")


class TestVerify:
    def test_clean_archive_verifies_ok(self):
        _ns, reader = _archive_with_trace(_blob())
        verification = reader.verify()
        assert verification.ok
        assert verification.traces[0].ok
        assert "verified OK" in verification.summary()

    def test_byte_flip_localized_to_its_block(self):
        blob = _blob(2000)
        table = block_table(blob)
        assert len(table) >= 3
        start, length, _crc = table[1]  # damage the *second* block
        damaged = bytearray(blob)
        damaged[start + length // 2] ^= 0xFF
        ns, reader = _archive_with_trace(blob)
        ns.write_file(
            f"/work/exp/{trace_filename(0)}", bytes(damaged), overwrite=True
        )
        verification = reader.verify()
        assert not verification.ok
        corruptions = verification.traces[0].corruptions
        assert [c.block for c in corruptions] == [1]
        assert corruptions[0].offset == start
        assert corruptions[0].actual_crc32 is not None
        # Everything before the bad block stays trusted.
        assert verification.traces[0].trusted_prefix == start

    def test_truncation_reported_as_absent_bytes(self):
        blob = _blob(2000)
        ns, reader = _archive_with_trace(blob)
        ns.write_file(
            f"/work/exp/{trace_filename(0)}", blob[: len(blob) // 2], overwrite=True
        )
        verification = reader.verify()
        bad = verification.traces[0].corruptions
        assert bad
        assert any(c.actual_crc32 is None for c in bad)

    def test_trailing_garbage_detected(self):
        blob = _blob(50)
        ns, reader = _archive_with_trace(blob)
        ns.write_file(
            f"/work/exp/{trace_filename(0)}", blob + b"JUNK", overwrite=True
        )
        assert not reader.verify().ok

    def test_missing_trace_file_is_an_error_entry(self):
        ns = _namespace()
        writer = ArchiveWriter(ns, "/work/exp")
        writer.write_definitions(_definitions())
        writer.write_trace_blob(0, _blob(50))
        writer.write_trace_blob(1, _blob(50, rank=1))
        writer.write_manifest()
        fs = ns.resolve("/work/exp")
        del fs._files[f"/work/exp/{trace_filename(1)}"]
        verification = ArchiveReader(ns, "/work/exp").verify()
        assert not verification.ok
        assert "missing" in verification.traces[1].error

    def test_manifestless_archive_is_unverifiable_not_broken(self):
        ns = _namespace()
        writer = ArchiveWriter(ns, "/work/exp")
        writer.write_definitions(_definitions())
        writer.write_trace_blob(0, _blob(50))
        # No write_manifest(): pre-integrity archive.
        verification = ArchiveReader(ns, "/work/exp").verify()
        assert verification.missing_manifest
        assert verification.ok
        assert "no manifest" in verification.summary()

    def test_unreadable_manifest_is_an_error(self):
        ns, reader = _archive_with_trace(_blob(50))
        ns.write_file(f"/work/exp/{MANIFEST_FILE}", b"{broken", overwrite=True)
        verification = ArchiveReader(ns, "/work/exp").verify()
        assert not verification.ok
        assert verification.error


class TestSalvageChecked:
    def test_silent_corruption_flagged(self):
        # A flipped payload byte that the codec parses fine: plain salvage
        # calls the trace complete; the checksum must contradict it.
        blob = _blob(400)
        entry = TraceManifestEntry.for_blob(0, blob)
        damaged = bytearray(blob)
        damaged[HEADER_SIZE + 4] ^= 0x01  # inside the first record's payload
        plain = salvage_events(bytes(damaged))
        checked = salvage_checked(bytes(damaged), entry)
        if plain.complete and plain.balanced:
            assert not checked.complete
            assert "checksum" in checked.error
        # Augment-only: checking never costs salvaged events.
        assert len(checked.events) >= len(plain.events)

    def test_clean_blob_stays_complete(self):
        blob = _blob(100)
        entry = TraceManifestEntry.for_blob(0, blob)
        checked = salvage_checked(blob, entry)
        assert checked.complete
        assert checked.error == ""

    def test_truncated_blob_reports_manifest_size(self):
        blob = _blob(400)
        entry = TraceManifestEntry.for_blob(0, blob)
        cut = block_table(blob)[0][1]  # exactly the first block: clean cut
        checked = salvage_checked(blob[:cut], entry)
        assert checked.bytes_total == len(blob)
        # The cut is record-aligned, so the grammar decodes the whole blob
        # (complete) — but the manifest still exposes the loss: the
        # completeness fraction is honest and the trace is not analyzable
        # (grammar imbalance or checksum flip, whichever applies).
        assert 0.0 < checked.completeness < 1.0
        assert not (checked.complete and checked.balanced)

    def test_no_entry_degrades_to_plain_salvage(self):
        blob = _blob(100)
        checked = salvage_checked(blob, None)
        plain = salvage_events(blob)
        assert checked.complete == plain.complete
        assert checked.events == plain.events


# -- end-to-end: runs, fault injection, degraded replay ------------------------


def _clean_run():
    if "run" not in _CACHE:
        mc = uniform_metacomputer(metahost_count=2, node_count=2, cpus_per_node=1)
        work = {r: 0.004 * (1 + r % 2) for r in range(NPROCS)}
        _CACHE["run"] = simulate(
            make_imbalance_app(work, iterations=3),
            mc,
            Placement.block(mc, NPROCS),
            seed=9,
        )
        files = {}
        for machine in _CACHE["run"].machines_used:
            ns = _CACHE["run"].namespaces[machine]
            files[machine] = {
                name: ns.read_file(f"{_CACHE['run'].archive_path}/{name}")
                for name in ns.list_dir(_CACHE["run"].archive_path)
            }
        _CACHE["files"] = files
    return _CACHE["run"], _CACHE["files"]


class TestRunVerification:
    def test_clean_run_verifies_ok(self):
        run, _files = _clean_run()
        verification = verify_archives(run)
        assert verification.ok
        assert verification.text().endswith("verdict: OK")

    def test_fault_injected_damage_detected(self):
        mc = uniform_metacomputer(metahost_count=2, node_count=2, cpus_per_node=1)
        work = {r: 0.004 for r in range(NPROCS)}
        plan = FaultPlan(
            name="bitrot",
            seed=1,
            specs=(
                TraceCorruption(rank=1, at_fraction=0.5, length=8),
                TraceTruncation(rank=3, keep_fraction=0.6),
            ),
        )
        run = simulate(
            make_imbalance_app(work, iterations=3),
            mc,
            Placement.block(mc, NPROCS),
            seed=1,
            fault_plan=plan,
        )
        verification = verify_archives(run)
        assert not verification.ok
        damaged = {c.rank for c in verification.corruptions}
        assert damaged == {1, 3}
        assert "CORRUPTION DETECTED" in verification.text()
        # ... and the degraded replay still works on the same run.
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            result = analyze(run, AnalysisRequest(degraded=True))
        assert result.completeness


def _damaged_readers(files, path, victim, mode, position):
    """Fresh archives with the victim's trace flipped or cut at *position*."""
    readers = {}
    for machine, contents in files.items():
        ns = MountNamespace({"/": SimFileSystem(f"fs-{machine}")})
        ns.create_dir(path)
        for name, blob in contents.items():
            if name == trace_filename(victim):
                if mode == "truncate":
                    blob = blob[: min(position, len(blob))]
                else:
                    index = position % len(blob)
                    mutated = bytearray(blob)
                    mutated[index] ^= 0xA5
                    blob = bytes(mutated)
            ns.write_file(f"{path}/{name}", blob)
        readers[machine] = ArchiveReader(ns, path)
    return readers


class TestCorruptionProperty:
    @given(
        victim=st.integers(min_value=0, max_value=NPROCS - 1),
        mode=st.sampled_from(["flip", "truncate"]),
        position=st.integers(min_value=0, max_value=30_000),
    )
    @settings(max_examples=30, deadline=None)
    def test_any_damage_is_localized_and_survivable(self, victim, mode, position):
        """For any single byte flip or truncation anywhere: ``verify()``
        localizes the damage to a block of the right trace, and degraded
        replay yields a :class:`RankCompleteness` for the victim without
        ever raising."""
        run, files = _clean_run()
        readers = _damaged_readers(
            files, run.archive_path, victim, mode, position
        )
        original = files[run.definitions.machine_of(victim)][trace_filename(victim)]
        changed = (
            position % len(original) < len(original)
            if mode == "flip"
            else position < len(original)
        )

        for reader in readers.values():
            verification = reader.verify()
            entry = reader.manifest_entry(victim)
            if entry is None:
                continue  # victim archived on the other metahost
            if changed:
                assert not verification.traces[victim].ok
                bad = verification.traces[victim].corruptions
                assert all(c.rank == victim for c in bad)
                for c in bad:
                    assert 0 <= c.offset < max(1, entry.size)
            else:
                assert verification.traces[victim].ok

        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            result = ReplayAnalyzer(readers, degraded=True).analyze()
        assert isinstance(result.completeness[victim], RankCompleteness)
        if changed:
            assert not result.completeness[victim].complete
        else:
            assert result.completeness[victim].complete
