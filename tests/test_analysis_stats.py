"""Tests for trace statistics (comm matrix, histograms, region profile)."""

import pytest

from repro.analysis.replay import analyze_run
from repro.analysis.stats import (
    CommMatrix,
    SizeHistogram,
    render_statistics,
    statistics_of,
)
from repro.apps.imbalance import make_imbalance_app, make_master_worker_app
from repro.errors import AnalysisError
from repro.topology.presets import single_cluster, uniform_metacomputer

from tests.conftest import run_app


class TestCommMatrix:
    def test_accumulation_and_split(self):
        matrix = CommMatrix()
        matrix.add(0, 1, 100, crosses_metahosts=False)
        matrix.add(0, 1, 50, crosses_metahosts=False)
        matrix.add(1, 2, 10, crosses_metahosts=True)
        assert matrix.bytes_sent[(0, 1)] == 150
        assert matrix.messages[(0, 1)] == 2
        assert matrix.internal_bytes == 150
        assert matrix.external_bytes == 10
        assert matrix.total_bytes == 160
        assert matrix.total_messages == 3

    def test_heaviest_pairs(self):
        matrix = CommMatrix()
        matrix.add(0, 1, 10, False)
        matrix.add(2, 3, 100, False)
        assert matrix.heaviest_pairs(1) == [((2, 3), 100)]

    def test_partners(self):
        matrix = CommMatrix()
        matrix.add(0, 1, 10, False)
        matrix.add(2, 0, 10, False)
        assert matrix.partners_of(0) == [1, 2]
        assert matrix.partners_of(3) == []


class TestSizeHistogram:
    def test_power_of_two_binning(self):
        h = SizeHistogram()
        for size in (0, 1, 2, 3, 4, 1024, 1025, 2047):
            h.add(size)
        assert h.bins[0] == 2  # sizes 0 and 1
        assert h.bins[1] == 2  # sizes 2, 3
        assert h.bins[2] == 1  # size 4
        assert h.bins[10] == 3  # 1024..2047
        assert h.count == 8

    def test_labels(self):
        h = SizeHistogram()
        h.add(1024)
        assert h.rows() == [("1024..2047 B", 1)]

    def test_negative_rejected(self):
        with pytest.raises(AnalysisError):
            SizeHistogram().add(-1)


class TestEndToEndStatistics:
    @pytest.fixture(scope="class")
    def stats(self):
        mc = uniform_metacomputer(metahost_count=2, node_count=2, cpus_per_node=1)
        work = {r: 0.01 for r in range(4)}
        run = run_app(mc, 4, make_imbalance_app(work, iterations=3), seed=2)
        return statistics_of(analyze_run(run))

    def test_message_counts(self, stats):
        # 4 ranks × 3 iterations × 1 sendrecv each = 12 messages.
        assert stats.comm.total_messages == 12

    def test_internal_external_split(self, stats):
        # The ring crosses the metahost boundary twice per iteration.
        assert stats.comm.external_bytes == 2 * 3 * 1024
        assert stats.comm.internal_bytes == 2 * 3 * 1024

    def test_region_profile_exact_visits(self, stats):
        profile = {r.name: r for r in stats.regions.values()}
        assert profile["work"].visits == 12  # 4 ranks × 3 iterations
        assert profile["MPI_Sendrecv"].visits == 12
        assert profile["main"].visits == 4

    def test_region_exclusive_time(self, stats):
        profile = {r.name: r for r in stats.regions.values()}
        # 4 ranks × 3 iterations × 10 ms compute.
        assert profile["work"].exclusive_s == pytest.approx(0.12, rel=0.05)

    def test_mpi_fraction_bounds(self, stats):
        for fraction in stats.mpi_fraction_of_rank.values():
            assert 0.0 <= fraction <= 1.0

    def test_rendering(self, stats):
        text = render_statistics(stats)
        assert "heaviest sender" in text
        assert "MPI_Sendrecv" in text
        assert "message sizes" in text

    def test_master_worker_matrix_shape(self):
        mc = single_cluster(node_count=4, cpus_per_node=1)
        work = {1: 0.01, 2: 0.01, 3: 0.01}
        run = run_app(mc, 4, make_master_worker_app(work, rounds=2))
        stats = statistics_of(analyze_run(run))
        # All traffic flows into rank 0.
        assert all(dst == 0 for (_src, dst) in stats.comm.bytes_sent)
        assert stats.comm.partners_of(0) == [1, 2, 3]
