"""Tests for the comparison renderer (algebra presentation)."""


from repro.report.algebra import ExperimentData, render_comparison


def _experiment(name, late_sender, barrier, total):
    data = ExperimentData(name=name, total_time=total)
    data.cells[("late-sender", ("main", "MPI_Recv"), 0)] = late_sender
    data.cells[("wait-at-barrier", ("main", "MPI_Barrier"), 1)] = barrier
    return data


class TestRenderComparison:
    def test_table_rows(self):
        a = _experiment("hetero", 2.0, 5.0, 20.0)
        b = _experiment("homog", 0.5, 0.5, 10.0)
        text = render_comparison(a, b)
        assert "hetero" in text and "homog" in text
        assert "late-sender" in text
        assert "wait-at-barrier" in text
        assert "+1.500" in text  # late-sender delta
        assert "+10.000" in text  # total-time delta

    def test_movers_ranked_by_magnitude(self):
        a = _experiment("a", 2.0, 0.1, 5.0)
        b = _experiment("b", 0.0, 0.2, 5.0)
        text = render_comparison(a, b, top_paths=1)
        movers_section = text.split("largest movers")[1]
        assert "late-sender" in movers_section
        assert "wait-at-barrier" not in movers_section

    def test_metric_filter(self):
        a = _experiment("a", 2.0, 5.0, 20.0)
        b = _experiment("b", 0.5, 0.5, 10.0)
        text = render_comparison(a, b, metrics=["late-sender"])
        header, movers = text.split("largest movers")
        assert "wait-at-barrier" not in header

    def test_all_zero_metrics_skipped(self):
        a = ExperimentData(name="a", total_time=1.0)
        a.cells[("late-sender", ("m",), 0)] = 0.0
        b = ExperimentData(name="b", total_time=1.0)
        b.cells[("late-sender", ("m",), 0)] = 0.0
        text = render_comparison(a, b)
        assert "late-sender" not in text.split("largest movers")[0].split("total time")[1]

    def test_negative_deltas_signed(self):
        a = _experiment("a", 0.1, 0.1, 5.0)
        b = _experiment("b", 2.0, 0.1, 5.0)
        text = render_comparison(a, b)
        assert "-1.900" in text
