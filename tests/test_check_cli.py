"""``repro check`` CLI: exit codes and the schema-stable JSON format."""

from __future__ import annotations

import json
import textwrap

from repro.cli import main

#: The JSON output contract: exactly these top-level keys, exactly these
#: per-finding keys.  Consumers (the CI annotation step) parse this — a
#: shape change is an API change and must be deliberate.
TOP_LEVEL_KEYS = {"version", "root", "ok", "findings", "suppressed", "rules"}
FINDING_KEYS = {"rule", "file", "line", "symbol", "message", "hint", "snippet"}


def write_tree(tmp_path, source, rel="repro/sim/fx.py"):
    root = tmp_path / "repro"
    target = tmp_path / rel
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(textwrap.dedent(source))
    return str(root)


DIRTY = """
import numpy as np
rng = np.random.default_rng()
"""


class TestExitCodes:
    def test_clean_tree_exits_zero(self, capsys):
        assert main(["check"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_findings_exit_one(self, tmp_path, capsys):
        root = write_tree(tmp_path, DIRTY)
        assert main(["check", "--root", root, "--no-baseline"]) == 1
        assert "DET101" in capsys.readouterr().out

    def test_conflicting_flags_exit_two(self, capsys):
        assert main(["check", "--no-baseline", "--baseline", "x.json"]) == 2
        assert "conflicts" in capsys.readouterr().err

    def test_bad_root_exits_two(self, tmp_path, capsys):
        missing = str(tmp_path / "nope")
        assert main(["check", "--root", missing]) == 2
        assert "not a directory" in capsys.readouterr().err

    def test_malformed_baseline_exits_two(self, tmp_path, capsys):
        root = write_tree(tmp_path, DIRTY)
        bad = tmp_path / "baseline.json"
        bad.write_text("{broken")
        assert main(["check", "--root", root, "--baseline", str(bad)]) == 2
        assert "unreadable baseline" in capsys.readouterr().err


class TestJsonFormat:
    def test_schema_is_stable(self, tmp_path, capsys):
        root = write_tree(tmp_path, DIRTY)
        code = main(
            ["check", "--root", root, "--no-baseline", "--format", "json"]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) == TOP_LEVEL_KEYS
        assert payload["version"] == 1
        assert payload["ok"] is False
        assert payload["suppressed"] == 0
        assert payload["rules"] == {"DET101": 1}
        (found,) = payload["findings"]
        assert set(found) == FINDING_KEYS
        assert found["rule"] == "DET101"
        assert found["file"] == "repro/sim/fx.py"
        assert found["line"] == 3
        assert found["snippet"] == "rng = np.random.default_rng()"

    def test_clean_json_on_real_tree(self, capsys):
        assert main(["check", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["findings"] == []


class TestUpdateBaseline:
    def test_update_then_justify_then_clean(self, tmp_path, capsys):
        root = write_tree(tmp_path, DIRTY)
        baseline = tmp_path / "baseline.json"

        # Update writes an entry but leaves the reason blank — the run
        # still fails (BASE002) until someone writes the justification.
        code = main(
            ["check", "--root", root, "--baseline", str(baseline),
             "--update-baseline"]
        )
        assert code == 1
        assert "BASE002" in capsys.readouterr().out

        payload = json.loads(baseline.read_text())
        (entry,) = payload["entries"]
        assert entry["rule"] == "DET101"
        assert entry["reason"] == ""
        entry["reason"] = "fixture rng is display-only"
        baseline.write_text(json.dumps(payload))

        assert main(["check", "--root", root, "--baseline", str(baseline)]) == 0
        assert "1 baselined" in capsys.readouterr().out

    def test_stale_entry_fails_loudly(self, tmp_path, capsys):
        root = write_tree(tmp_path, DIRTY)
        baseline = tmp_path / "baseline.json"
        main(["check", "--root", root, "--baseline", str(baseline),
              "--update-baseline"])
        capsys.readouterr()
        # Fix the violation: the baseline entry is now stale and must fail.
        write_tree(tmp_path, "import numpy as np\nrng = np.random.default_rng(7)\n")
        assert main(["check", "--root", root, "--baseline", str(baseline)]) == 1
        assert "BASE001" in capsys.readouterr().out
