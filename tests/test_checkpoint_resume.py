"""Checkpoint/resume: the journal, resumable sweeps, and the CLI flag.

The contract: a sweep interrupted at any cell boundary and rerun with the
same journal (a) never redoes completed cells, and (b) produces outputs
identical to an uninterrupted run — deterministic cells make cached and
recomputed payloads interchangeable.
"""

from __future__ import annotations

import json
import os

import pytest

from repro import cli
from repro.api import CheckpointJournal, run_experiment
from repro.errors import CheckpointError
from repro.experiments import faults as faults_module
from repro.experiments import table2 as table2_module
from repro.experiments.faults import run_fault_experiment
from repro.experiments.table2 import run_table2
from repro.resilience import open_journal


class TestJournal:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        journal = CheckpointJournal(path)
        cell = {"experiment": "x", "seed": 3}
        assert not journal.has(cell)
        assert journal.get(cell) is None
        assert journal.get(cell, default="miss") == "miss"
        journal.record(cell, {"answer": 42})
        assert journal.has(cell)
        assert journal.get(cell) == {"answer": 42}
        assert len(journal) == 1
        # A fresh instance reads the same state back off disk.
        reloaded = CheckpointJournal(path)
        assert reloaded.get(cell) == {"answer": 42}
        assert reloaded.cells() == journal.cells()

    def test_cell_key_order_is_canonical(self, tmp_path):
        journal = CheckpointJournal(str(tmp_path / "j.jsonl"))
        journal.record({"a": 1, "b": 2}, "payload")
        assert journal.has({"b": 2, "a": 1})

    def test_torn_tail_tolerated(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        CheckpointJournal(path).record({"ok": 1}, "kept")
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"cell": {"torn": 1}, "payl')  # interrupted append
        journal = CheckpointJournal(path)
        assert journal.get({"ok": 1}) == "kept"
        assert not journal.has({"torn": 1})

    def test_garbage_lines_skipped(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("not json at all\n")
            handle.write('{"cell": "not-a-dict", "payload": 1}\n')
            handle.write(
                json.dumps({"cell": {"good": 1}, "payload": "yes"}) + "\n"
            )
        journal = CheckpointJournal(path)
        assert len(journal) == 1
        assert journal.get({"good": 1}) == "yes"

    def test_writes_are_atomic(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        journal = CheckpointJournal(path)
        for i in range(5):
            journal.record({"i": i}, i)
        leftovers = [n for n in os.listdir(tmp_path) if n.endswith(".tmp")]
        assert leftovers == []
        assert len(CheckpointJournal(path)) == 5

    def test_unserializable_cell_rejected(self, tmp_path):
        journal = CheckpointJournal(str(tmp_path / "j.jsonl"))
        with pytest.raises(CheckpointError):
            journal.record({"bad": object()}, "x")

    def test_unserializable_payload_rejected(self, tmp_path):
        journal = CheckpointJournal(str(tmp_path / "j.jsonl"))
        with pytest.raises(CheckpointError):
            journal.record({"ok": 1}, object())
        # The failed record must not poison the journal.
        assert not journal.has({"ok": 1})

    def test_open_journal_propagates_none(self, tmp_path):
        assert open_journal(None) is None
        assert open_journal("") is None
        journal = open_journal(str(tmp_path / "j.jsonl"))
        assert isinstance(journal, CheckpointJournal)


def _small_bench():
    return table2_module.ClockBenchConfig(
        rounds=12, exchanges_per_round=1, size_bytes=64, inter_round_gap_s=0.05
    )


class TestTable2Resume:
    def test_completed_schemes_skipped(self, tmp_path, monkeypatch):
        path = str(tmp_path / "j.jsonl")
        rows1, _run, analyses1 = run_table2(
            seed=7,
            config=_small_bench(),
            nodes_per_metahost=2,
            journal=CheckpointJournal(path),
        )
        assert len(analyses1) == 3  # all schemes computed the first time

        # Resume must not analyze anything: a bombing analyze() proves it.
        def bomb(*args, **kwargs):
            raise AssertionError("resume recomputed a completed cell")

        monkeypatch.setattr(table2_module, "analyze", bomb)
        rows2, _run, analyses2 = run_table2(
            seed=7,
            config=_small_bench(),
            nodes_per_metahost=2,
            journal=CheckpointJournal(path),
        )
        assert analyses2 == {}
        assert rows2 == rows1

    def test_interrupted_sweep_matches_uninterrupted(self, tmp_path, monkeypatch):
        baseline, _run, _a = run_table2(
            seed=7, config=_small_bench(), nodes_per_metahost=2
        )

        path = str(tmp_path / "j.jsonl")
        real_analyze = table2_module.analyze
        calls = {"n": 0}

        def interrupt_after_one(*args, **kwargs):
            if calls["n"] >= 1:
                raise KeyboardInterrupt
            calls["n"] += 1
            return real_analyze(*args, **kwargs)

        monkeypatch.setattr(table2_module, "analyze", interrupt_after_one)
        with pytest.raises(KeyboardInterrupt):
            run_table2(
                seed=7,
                config=_small_bench(),
                nodes_per_metahost=2,
                journal=CheckpointJournal(path),
            )
        assert len(CheckpointJournal(path)) == 1  # one scheme made it

        monkeypatch.setattr(table2_module, "analyze", real_analyze)
        resumed, _run, analyses = run_table2(
            seed=7,
            config=_small_bench(),
            nodes_per_metahost=2,
            journal=CheckpointJournal(path),
        )
        assert resumed == baseline
        assert len(analyses) == 2  # only the remaining schemes ran

    def test_different_config_is_a_different_cell(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        run_table2(
            seed=7,
            config=_small_bench(),
            nodes_per_metahost=2,
            journal=CheckpointJournal(path),
        )
        journal = CheckpointJournal(path)
        _rows, _run, analyses = run_table2(
            seed=8,  # different seed → every cell misses
            config=_small_bench(),
            nodes_per_metahost=2,
            journal=journal,
        )
        assert len(analyses) == 3
        assert len(journal) == 6


class TestFaultLadderResume:
    def test_completed_plans_skipped_and_text_identical(
        self, tmp_path, monkeypatch
    ):
        path = str(tmp_path / "j.jsonl")
        plans = faults_module.escalating_fault_plans(11)[:2]  # clean + lossy
        report1 = run_fault_experiment(
            seed=11,
            plans=plans,
            coupling_intervals=1,
            journal=CheckpointJournal(path),
        )
        assert len(CheckpointJournal(path)) == 2

        def bomb(*args, **kwargs):
            raise AssertionError("resume re-ran a completed plan")

        monkeypatch.setattr(faults_module, "MetaMPIRuntime", bomb)
        report2 = run_fault_experiment(
            seed=11,
            plans=plans,
            coupling_intervals=1,
            journal=CheckpointJournal(path),
        )
        assert report2.text() == report1.text()

    def test_aborted_plan_is_journaled(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        plans = [faults_module.escalating_fault_plans(11)[-1]]  # link-death
        report = run_fault_experiment(
            seed=11,
            plans=plans,
            coupling_intervals=1,
            journal=CheckpointJournal(path),
        )
        assert not report.runs[0].completed
        assert report.runs[0].error
        # The deterministic abort is a settled outcome: resumable.
        assert len(CheckpointJournal(path)) == 1


class TestFacadeResume:
    def test_run_experiment_serves_cached_text(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        text = run_experiment("table1", journal=CheckpointJournal(path))
        journal = CheckpointJournal(path)
        cell = {"experiment": "table1", "seed": 0}
        assert journal.get(cell) == {"text": text}
        # Prove the rerun reads the journal: plant a sentinel payload.
        journal.record(cell, {"text": "sentinel"})
        assert (
            run_experiment("table1", journal=CheckpointJournal(path))
            == "sentinel"
        )

    def test_no_journal_means_no_cache(self, tmp_path):
        text1 = run_experiment("table1")
        text2 = run_experiment("table1")
        assert text1 == text2  # deterministic, but computed both times


class TestCliResume:
    def test_resume_flag_creates_and_reuses_journal(
        self, tmp_path, capsys, monkeypatch
    ):
        path = str(tmp_path / "cli-journal.jsonl")
        assert cli.main(["table1", "--resume", "--journal", path]) == 0
        first = capsys.readouterr().out
        assert os.path.exists(path)
        assert len(CheckpointJournal(path)) == 1

        # Second run must come from the journal: sentinel the cached text.
        # (Close the journal afterwards — --resume takes the writer lock.)
        with CheckpointJournal(path) as journal:
            cell = {"experiment": "table1", "seed": 0}
            journal.record(cell, {"text": "from-the-journal"})
        assert cli.main(["table1", "--resume", "--journal", path]) == 0
        second = capsys.readouterr().out
        assert "from-the-journal" in second
        assert first != second

    def test_without_resume_no_journal_is_written(self, tmp_path, capsys):
        path = str(tmp_path / "cli-journal.jsonl")
        assert cli.main(["table1", "--journal", path]) == 0
        capsys.readouterr()
        assert not os.path.exists(path)

    def test_new_flags_parse(self, capsys):
        assert (
            cli.main(["table1", "--timeout", "60", "--max-retries", "1"]) == 0
        )
        out = capsys.readouterr().out
        assert "table1" in out
