"""The single-pass streaming replay and the AnalysisRequest surface.

Three contracts under test:

* **Golden equivalence** — the streaming analyzer (the default serial
  path of ``analyze_run``) reproduces the buffered
  :class:`~repro.analysis.replay.ReplayAnalyzer` bit for bit: same cube
  floats, same call-path ids, same stamps, same rendered report bytes —
  strict and degraded, retained and bounded, serial and sharded.
* **Bounded memory** — ``bounded=True`` drops per-op retention without
  changing any aggregate, and peak memory on a 10× longer trace stays
  within the acceptance envelope (the irreducible O(trace) residuals —
  raw blobs and the clock-condition stamp list — are small).
* **Time-resolved severity** — ``timeline=True`` yields a
  :class:`~repro.analysis.severity_timeline.SeverityTimeline` whose bins
  conserve the cube's totals, without perturbing the aggregate result.

Plus unit coverage of :class:`AnalysisRequest` (validation, canonical
config form, the deprecated-keyword shim).
"""

from __future__ import annotations

import os
import subprocess
import sys
import warnings

import pytest

from repro.analysis.replay import ReplayAnalyzer, analyze_run
from repro.analysis.request import AnalysisRequest
from repro.analysis.severity_timeline import SeverityTimeline
from repro.apps.imbalance import make_imbalance_app
from repro.errors import AnalysisError
from repro.faults import FaultPlan, TraceCorruption, TraceTruncation
from repro.report import render_analysis, render_severity_timeline
from repro.topology.presets import uniform_metacomputer

from tests.conftest import run_app
from tests.test_parallel_analysis import assert_identical


def _readers(run):
    return {machine: run.reader(machine) for machine in run.machines_used}


def _buffered(run, degraded=False):
    """The reference implementation: the two-pass buffered analyzer."""
    return ReplayAnalyzer(_readers(run), degraded=degraded).analyze()


@pytest.fixture(scope="module")
def small_run():
    mc = uniform_metacomputer(metahost_count=2, node_count=2, cpus_per_node=2)
    work = {r: 0.005 * (1 + r % 3) for r in range(8)}
    return run_app(mc, 8, make_imbalance_app(work, iterations=3), seed=5)


@pytest.fixture(scope="module")
def damaged_run():
    """Upper ranks lose trace data: one truncated, one corrupted."""
    mc = uniform_metacomputer(metahost_count=2, node_count=2, cpus_per_node=2)
    work = {r: 0.005 * (1 + r % 3) for r in range(8)}
    plan = FaultPlan(
        name="damage",
        seed=3,
        specs=(
            TraceTruncation(rank=6, keep_fraction=0.5),
            TraceCorruption(rank=3, at_fraction=0.5, length=8),
        ),
    )
    return run_app(
        mc, 8, make_imbalance_app(work, iterations=3), seed=3, fault_plan=plan
    )


class TestStreamingEquivalence:
    def test_strict_matches_buffered(self, small_run):
        streaming = analyze_run(small_run, request=AnalysisRequest())
        assert_identical(_buffered(small_run), streaming)

    def test_degraded_matches_buffered(self, damaged_run):
        def caught(fn):
            with warnings.catch_warnings(record=True) as log:
                warnings.simplefilter("always")
                result = fn()
            return result, [(w.category, str(w.message)) for w in log]

        buffered, buffered_warnings = caught(
            lambda: _buffered(damaged_run, degraded=True)
        )
        streaming, streaming_warnings = caught(
            lambda: analyze_run(damaged_run, request=AnalysisRequest(degraded=True))
        )
        assert_identical(buffered, streaming)
        assert buffered.excluded_ranks == streaming.excluded_ranks
        # Same exclusions, same messages, same order — the fault
        # experiments count these warnings.
        assert buffered_warnings == streaming_warnings

    def test_bounded_matches_retained(self, small_run):
        retained = analyze_run(small_run, request=AnalysisRequest())
        bounded = analyze_run(small_run, request=AnalysisRequest(bounded=True))
        assert retained.cube.data == bounded.cube.data
        assert retained.grid_pairs.data == bounded.grid_pairs.data
        assert retained.violations.stamps == bounded.violations.stamps
        assert retained.total_time == bounded.total_time
        assert render_analysis(retained) == render_analysis(bounded)
        # The one observable difference: per-op retention is dropped.
        assert all(tl.mpi_ops for tl in retained.timelines.values())
        assert all(not tl.mpi_ops for tl in bounded.timelines.values())
        assert all(not tl.omp_regions for tl in bounded.timelines.values())
        # Exclusive time survives (it feeds the TIME metric).
        for rank, tl in retained.timelines.items():
            assert bounded.timelines[rank].exclusive_time == tl.exclusive_time

    def test_bounded_degraded_matches_buffered(self, damaged_run):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            buffered = _buffered(damaged_run, degraded=True)
            bounded = analyze_run(
                damaged_run, request=AnalysisRequest(degraded=True, bounded=True)
            )
        assert buffered.cube.data == bounded.cube.data
        assert render_analysis(buffered) == render_analysis(bounded)


@pytest.mark.slow
class TestGoldenFigure6:
    """The acceptance pin: figure6 seed 1, clean and faulted, jobs 1 and 4,
    streaming vs the buffered reference — byte-identical reports."""

    @pytest.fixture(scope="class")
    def clean_run(self):
        from repro.apps.metatrace import make_metatrace_app
        from repro.experiments.configs import experiment1
        from repro.sim.runtime import MetaMPIRuntime

        metacomputer, placement, config = experiment1()
        runtime = MetaMPIRuntime(
            metacomputer, placement, seed=1, subcomms=config.subcomms()
        )
        return runtime.run(make_metatrace_app(config))

    @pytest.fixture(scope="class")
    def faulted_run(self):
        from repro.apps.metatrace import make_metatrace_app
        from repro.experiments.configs import experiment1
        from repro.sim.runtime import MetaMPIRuntime

        metacomputer, placement, config = experiment1()
        plan = FaultPlan(
            name="figure6-damage",
            seed=1,
            specs=(TraceTruncation(rank=5, keep_fraction=0.6),),
        )
        runtime = MetaMPIRuntime(
            metacomputer, placement, seed=1, subcomms=config.subcomms(),
            fault_plan=plan,
        )
        return runtime.run(make_metatrace_app(config))

    @pytest.mark.parametrize("jobs", [1, 4])
    def test_clean_matches_buffered(self, clean_run, jobs):
        reference = _buffered(clean_run)
        result = analyze_run(clean_run, request=AnalysisRequest(jobs=jobs))
        assert_identical(reference, result)
        assert render_analysis(reference).encode() == render_analysis(result).encode()

    @pytest.mark.parametrize("jobs", [1, 4])
    def test_faulted_matches_buffered(self, faulted_run, jobs):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            reference = _buffered(faulted_run, degraded=True)
            result = analyze_run(
                faulted_run, request=AnalysisRequest(degraded=True, jobs=jobs)
            )
        assert_identical(reference, result)
        assert reference.excluded_ranks == result.excluded_ranks


# -- bounded memory ------------------------------------------------------------

_MEASURE = """
import resource, sys
from repro.analysis.replay import analyze_run
from repro.analysis.request import AnalysisRequest
from repro.apps.imbalance import make_imbalance_app
from repro.sim.runtime import MetaMPIRuntime
from repro.topology.metacomputer import Placement
from repro.topology.presets import uniform_metacomputer

iterations = int(sys.argv[1])
mc = uniform_metacomputer(metahost_count=2, node_count=2, cpus_per_node=1)
work = {r: 0.002 * (1 + r % 3) for r in range(4)}
placement = Placement.block(mc, 4)
run = MetaMPIRuntime(mc, placement, seed=2).run(
    make_imbalance_app(work, iterations=iterations)
)
result = analyze_run(run, request=AnalysisRequest(bounded=True))
assert result.cube.metrics()
print(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
"""


def _long_short_runs(iterations):
    mc = uniform_metacomputer(metahost_count=2, node_count=2, cpus_per_node=1)
    work = {r: 0.002 * (1 + r % 3) for r in range(4)}
    return run_app(mc, 4, make_imbalance_app(work, iterations=iterations), seed=2)


@pytest.mark.slow
class TestBoundedMemory:
    def test_bounded_peak_below_retained_on_long_trace(self):
        """Dropping retention must actually shed the O(trace) working set.

        Measured on this workload: bounded peaks at ~0.54× the retained
        peak (the remainder is the raw blobs, the clock-condition stamps,
        and the result itself).  0.8 leaves headroom against allocator
        noise while still failing if retention quietly comes back.
        """
        import tracemalloc

        run = _long_short_runs(300)

        def peak(bounded):
            tracemalloc.start()
            result = analyze_run(run, request=AnalysisRequest(bounded=bounded))
            _, peak_bytes = tracemalloc.get_traced_memory()
            tracemalloc.stop()
            return result, peak_bytes

        retained, retained_peak = peak(False)
        bounded, bounded_peak = peak(True)
        assert retained.cube.data == bounded.cube.data
        assert bounded_peak < 0.8 * retained_peak, (
            f"bounded peak {bounded_peak} not below 0.8x retained "
            f"{retained_peak}: per-op retention leaked back in"
        )

    def test_rss_flat_across_10x_trace(self):
        """The acceptance criterion: peak RSS of a bounded analyze on a
        10× longer trace stays within 2× of the short-trace baseline.
        Measured ratio is ~1.01; 2.0 is the contract."""
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")

        def peak_rss_kib(iterations):
            proc = subprocess.run(
                [sys.executable, "-c", _MEASURE, str(iterations)],
                capture_output=True, text=True, env=env, timeout=300,
            )
            assert proc.returncode == 0, proc.stderr
            return int(proc.stdout.strip())

        short = peak_rss_kib(30)
        long = peak_rss_kib(300)
        assert long <= 2.0 * short, (
            f"10x trace RSS {long} KiB exceeds 2x short-trace baseline "
            f"{short} KiB"
        )


# -- the severity timeline -----------------------------------------------------


class TestSeverityTimelineUnit:
    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="window_s"):
            SeverityTimeline(window_s=0.0)
        with pytest.raises(ValueError, match="stride_s"):
            SeverityTimeline(stride_s=-1.0)

    def test_overlap_weighted_binning(self):
        tl = SeverityTimeline(window_s=1.0, stride_s=1.0)
        # [0.5, 2.5] spans three 1s bins with overlaps 0.5 / 1.0 / 0.5.
        tl.add("m", 1, 0, 0.5, 2.5, 2.0)
        bins = tl.bins("m")
        assert bins == {0: pytest.approx(0.5), 1: pytest.approx(1.0),
                        2: pytest.approx(0.5)}
        assert sum(bins.values()) == pytest.approx(2.0)

    def test_degenerate_interval_charges_one_bin(self):
        tl = SeverityTimeline(stride_s=0.25)
        tl.add("m", 1, 0, 1.0, 1.0, 3.0)
        assert tl.bins("m") == {4: pytest.approx(3.0)}

    def test_nonpositive_value_ignored(self):
        tl = SeverityTimeline()
        tl.add("m", 1, 0, 0.0, 1.0, 0.0)
        tl.add("m", 1, 0, 0.0, 1.0, -1.0)
        assert tl.metrics() == []

    def test_rolling_window_series(self):
        tl = SeverityTimeline(window_s=2.0, stride_s=1.0)
        tl.add("m", 1, 0, 0.0, 1.0, 1.0)   # bin 0
        tl.add("m", 1, 0, 2.0, 3.0, 4.0)   # bin 2
        assert tl.window_bins == 2
        series = tl.series("m")
        # One entry per stride, value = bin + predecessor.
        assert [t for t, _ in series] == [0.0, 1.0, 2.0]
        assert [v for _, v in series] == [
            pytest.approx(1.0), pytest.approx(1.0), pytest.approx(4.0)
        ]
        assert tl.peak_window("m") == (2.0, pytest.approx(4.0))

    def test_peak_of_empty_metric(self):
        tl = SeverityTimeline()
        assert tl.peak_window("nothing") == (0.0, 0.0)
        assert tl.series("nothing") == []

    def test_filters_and_ranks(self):
        tl = SeverityTimeline(stride_s=1.0)
        tl.add("m", 1, 0, 0.0, 1.0, 1.0)
        tl.add("m", 2, 3, 0.0, 1.0, 2.0)
        assert tl.ranks("m") == [0, 3]
        assert tl.bins("m", rank=3) == {0: pytest.approx(2.0)}
        assert tl.bins("m", cpid=1) == {0: pytest.approx(1.0)}
        assert tl.bins("m") == {0: pytest.approx(3.0)}

    def test_remap_merges_colliding_cells(self):
        tl = SeverityTimeline(stride_s=1.0)
        tl.add("m", 1, 0, 0.0, 1.0, 1.0)
        tl.add("m", 2, 0, 0.0, 1.0, 2.0)
        # Both local paths map to global cpid 7: cells merge additively.
        tl.remap_callpaths({0: {1: 7, 2: 7}})
        assert tl.bins("m", cpid=7) == {0: pytest.approx(3.0)}

    def test_payload_shape(self):
        tl = SeverityTimeline(window_s=2.0, stride_s=1.0)
        tl.add("m", 1, 0, 0.0, 1.0, 1.0)
        payload = tl.to_payload()
        assert payload["window_s"] == 2.0 and payload["stride_s"] == 1.0
        entry = payload["metrics"]["m"]
        assert entry["ranks"] == [0]
        assert entry["series"] and entry["peak"][1] == pytest.approx(1.0)
        assert entry["by_rank"]["0"] == entry["series"]
        # A named metric with no contributions still gets an entry.
        empty = tl.to_payload("absent")["metrics"]["absent"]
        assert empty["series"] == [] and empty["peak"] == [0.0, 0.0]


class TestTimelineThroughAnalyze:
    def test_timeline_conserves_cube_totals(self, small_run):
        request = AnalysisRequest(timeline=True, window_s=0.5, stride_s=0.1)
        result = analyze_run(small_run, request=request)
        timeline = result.severity_timeline
        assert timeline is not None
        assert "mpi" in timeline.metrics()
        # Every binned metric's mass equals its cube total (floats: the
        # timeline is diagnostic, so approx — the cube itself is exact).
        for metric in timeline.metrics():
            binned = sum(timeline.bins(metric).values())
            assert binned == pytest.approx(result.cube.total(metric), rel=1e-9), metric

    def test_timeline_does_not_perturb_aggregates(self, small_run):
        plain = analyze_run(small_run, request=AnalysisRequest())
        timed = analyze_run(small_run, request=AnalysisRequest(timeline=True))
        assert plain.cube.data == timed.cube.data
        assert render_analysis(plain) == render_analysis(timed)
        assert plain.severity_timeline is None

    def test_parallel_timeline_matches_serial_mass(self, small_run):
        request = AnalysisRequest(timeline=True)
        serial = analyze_run(small_run, request=request).severity_timeline
        parallel = analyze_run(
            small_run, request=AnalysisRequest(timeline=True, jobs=2)
        ).severity_timeline
        assert parallel is not None
        assert serial.metrics() == parallel.metrics()
        for metric in serial.metrics():
            assert sum(parallel.bins(metric).values()) == pytest.approx(
                sum(serial.bins(metric).values()), rel=1e-9
            ), metric

    def test_render_severity_timeline(self, small_run):
        request = AnalysisRequest(timeline=True)
        result = analyze_run(small_run, request=request)
        text = render_severity_timeline(result.severity_timeline)
        assert text.startswith("Time-resolved severity (window 1 s")
        assert "mpi" in text and "peak" in text and "|" in text
        only = render_severity_timeline(result.severity_timeline, metric="mpi")
        assert "mpi" in only and "late-sender" not in only


# -- the request object and its shim -------------------------------------------


class TestAnalysisRequest:
    def test_validation(self):
        with pytest.raises(AnalysisError, match="jobs"):
            AnalysisRequest(jobs=-1)
        with pytest.raises(AnalysisError, match="timeout"):
            AnalysisRequest(timeout=0.0)
        with pytest.raises(AnalysisError, match="max_retries"):
            AnalysisRequest(max_retries=-1)
        with pytest.raises(AnalysisError, match="window_s"):
            AnalysisRequest(window_s=0.0)
        with pytest.raises(AnalysisError, match="stride_s"):
            AnalysisRequest(stride_s=-0.1)

    def test_frozen(self):
        request = AnalysisRequest()
        with pytest.raises(Exception):
            request.jobs = 4  # type: ignore[misc]

    def test_canonical_config_omits_defaults(self):
        assert AnalysisRequest().to_config() == {}
        assert AnalysisRequest(jobs=4, timeline=True).to_config() == {
            "jobs": 4, "timeline": True,
        }

    def test_config_round_trip(self):
        request = AnalysisRequest(
            degraded=True, jobs=2, timeout=5.0, timeline=True, stride_s=0.5
        )
        assert AnalysisRequest.from_config(request.to_config()) == request

    def test_from_config_rejects_unknown_keys(self):
        with pytest.raises(AnalysisError, match="unknown analysis config"):
            AnalysisRequest.from_config({"jbos": 4})

    def test_from_config_overrides(self):
        request = AnalysisRequest.from_config({"jobs": 2}, timeline=True)
        assert request.jobs == 2 and request.timeline


class TestDeprecatedKwargShim:
    def test_analyze_run_legacy_kwargs_warn(self, small_run):
        with pytest.warns(
            DeprecationWarning,
            match=r"analyze_run: keyword arguments jobs= are deprecated",
        ):
            legacy = analyze_run(small_run, jobs=1)
        assert legacy.cube.data == analyze_run(
            small_run, request=AnalysisRequest(jobs=1)
        ).cube.data

    def test_analyze_run_rejects_both_forms(self, small_run):
        with pytest.raises(AnalysisError, match="not both"):
            analyze_run(small_run, request=AnalysisRequest(), jobs=2)

    def test_api_analyze_legacy_kwargs_warn(self, small_run):
        import repro.api as api

        with pytest.warns(
            DeprecationWarning,
            match=r"analyze: keyword arguments degraded=, jobs= are deprecated",
        ):
            api.analyze(small_run, degraded=False, jobs=1)

    def test_api_run_experiment_legacy_kwargs_warn(self, monkeypatch):
        import repro.api as api

        calls = {}

        def stub(seed, jobs, **opts):
            calls["seed"], calls["jobs"] = seed, jobs
            calls.update(opts)
            return "stub-report"

        monkeypatch.setitem(api.EXPERIMENTS, "stub", stub)
        with pytest.warns(
            DeprecationWarning,
            match=r"run_experiment: keyword arguments jobs=, timeout= are",
        ):
            text = api.run_experiment("stub", seed=0, jobs=3, timeout=9.0)
        assert text == "stub-report"
        assert calls["jobs"] == 3 and calls["timeout"] == 9.0
        # Request form runs warning-free and carries the same values.
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            api.run_experiment(
                "stub", AnalysisRequest(jobs=3, timeout=9.0), seed=0
            )

    def test_api_run_experiment_rejects_both_forms(self, monkeypatch):
        import repro.api as api

        monkeypatch.setitem(api.EXPERIMENTS, "stub", lambda *a, **k: "x")
        with pytest.raises(AnalysisError, match="not both"):
            api.run_experiment("stub", AnalysisRequest(), seed=0, jobs=2)

    def test_request_form_is_warning_free(self, small_run):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            analyze_run(small_run, request=AnalysisRequest(jobs=1))
