"""Tests for cross-experiment algebra (diff / merge / mean)."""

import pytest

from repro.analysis.patterns import LATE_SENDER, TIME, WAIT_AT_BARRIER
from repro.analysis.replay import analyze_run
from repro.apps.imbalance import make_barrier_imbalance_app
from repro.errors import ReportError
from repro.report.algebra import ExperimentData, canonicalize, diff, mean, merge
from repro.report.serialize import (
    experiment_from_dict,
    experiment_to_dict,
    result_to_dict,
)
from repro.topology.presets import single_cluster

from tests.conftest import run_app


def _run(work_slow, seed=0):
    mc = single_cluster(node_count=4, cpus_per_node=1)
    work = {0: work_slow, 1: 0.01, 2: 0.01, 3: 0.01}
    run = run_app(mc, 4, make_barrier_imbalance_app(work), seed=seed)
    return analyze_run(run)


@pytest.fixture(scope="module")
def heavy():
    return canonicalize(_run(0.3), "heavy")


@pytest.fixture(scope="module")
def light():
    return canonicalize(_run(0.05), "light")


class TestCanonicalize:
    def test_totals_preserved(self, heavy):
        result = _run(0.3)
        assert heavy.metric_total(WAIT_AT_BARRIER) == pytest.approx(
            result.metric_total(WAIT_AT_BARRIER)
        )

    def test_keys_are_structure_free(self, heavy):
        metric, path, rank = next(iter(heavy.cells))
        assert isinstance(metric, str)
        assert all(isinstance(frame, str) for frame in path)
        assert isinstance(rank, int)

    def test_by_machine(self, heavy):
        by_machine = heavy.by_machine(TIME)
        assert set(by_machine) == {"cluster"}

    def test_value_in_region(self, heavy):
        barrier_value = heavy.value_in_region(WAIT_AT_BARRIER, "MPI_Barrier")
        assert barrier_value == pytest.approx(heavy.metric_total(WAIT_AT_BARRIER))


class TestDiff:
    def test_diff_shows_improvement(self, heavy, light):
        delta = diff(heavy, light)
        assert delta.metric_total(WAIT_AT_BARRIER) > 0  # heavy waits more
        assert delta.total_time > 0

    def test_diff_is_antisymmetric(self, heavy, light):
        forward = diff(heavy, light)
        backward = diff(light, heavy)
        assert forward.metric_total(TIME) == pytest.approx(
            -backward.metric_total(TIME)
        )

    def test_diff_of_identical_is_zero(self, heavy):
        delta = diff(heavy, heavy)
        assert delta.metric_total(WAIT_AT_BARRIER) == pytest.approx(0.0)

    def test_name_records_operands(self, heavy, light):
        assert diff(heavy, light).name == "(heavy - light)"


class TestMergeAndMean:
    def test_merge_sums(self, heavy, light):
        merged = merge(heavy, light)
        assert merged.metric_total(TIME) == pytest.approx(
            heavy.metric_total(TIME) + light.metric_total(TIME)
        )

    def test_mean_averages(self, heavy, light):
        averaged = mean([heavy, light])
        assert averaged.metric_total(TIME) == pytest.approx(
            (heavy.metric_total(TIME) + light.metric_total(TIME)) / 2
        )

    def test_mean_of_one_is_identity(self, heavy):
        averaged = mean([heavy])
        assert averaged.metric_total(LATE_SENDER) == pytest.approx(
            heavy.metric_total(LATE_SENDER)
        )

    def test_mean_of_none_rejected(self):
        with pytest.raises(ReportError):
            mean([])

    def test_empty_combination_rejected(self):
        a = ExperimentData(name="a")
        b = ExperimentData(name="b")
        with pytest.raises(ReportError):
            diff(a, b)


class TestSerialization:
    def test_experiment_round_trip(self, heavy):
        restored = experiment_from_dict(experiment_to_dict(heavy))
        assert restored.cells == heavy.cells
        assert restored.total_time == heavy.total_time
        assert restored.machine_of_rank == heavy.machine_of_rank

    def test_result_to_dict_includes_metadata(self):
        result = _run(0.1)
        doc = result_to_dict(result, "x")
        assert doc["scheme"] == result.scheme_name
        assert "violations" in doc and "traffic" in doc

    def test_malformed_document_rejected(self):
        with pytest.raises(ReportError):
            experiment_from_dict({"name": "x"})

    def test_json_compatible(self, heavy):
        import json

        text = json.dumps(experiment_to_dict(heavy))
        restored = experiment_from_dict(json.loads(text))
        assert restored.cells == heavy.cells
