"""Tests for clock-condition checking."""

import pytest

from repro.clocks.condition import ClockConditionChecker, MessageStamp, count_violations
from repro.ids import NodeId

A = NodeId(0, 0)
B = NodeId(0, 1)
C = NodeId(1, 0)


def _stamp(send, recv, sender=A, receiver=B):
    return MessageStamp(
        sender_node=sender, receiver_node=receiver, send_time_s=send, recv_time_s=recv
    )


class TestMessageStamp:
    def test_ordered_message_ok(self):
        assert not _stamp(1.0, 1.001).violates

    def test_reversed_message_violates(self):
        assert _stamp(1.0, 0.999).violates

    def test_equal_stamps_do_not_violate(self):
        # recv == send is degenerate but not a causality reversal.
        assert not _stamp(1.0, 1.0).violates

    def test_slack_sign(self):
        assert _stamp(1.0, 1.5).slack_s == pytest.approx(0.5)
        assert _stamp(1.0, 0.5).slack_s == pytest.approx(-0.5)

    def test_crosses_nodes(self):
        assert _stamp(0, 1).crosses_nodes
        assert not _stamp(0, 1, sender=A, receiver=A).crosses_nodes


class TestChecker:
    def test_count_violations_function(self):
        stamps = [_stamp(0, 1), _stamp(1, 0.5), _stamp(2, 1.5)]
        assert count_violations(stamps) == 2

    def test_internal_external_split(self):
        checker = ClockConditionChecker()
        checker.add(_stamp(1.0, 0.5, sender=A, receiver=B))  # internal violation
        checker.add(_stamp(1.0, 0.5, sender=A, receiver=C))  # external violation
        checker.add(_stamp(1.0, 2.0, sender=A, receiver=C))  # fine
        assert checker.total == 3
        assert checker.violations == 2
        assert checker.internal_violations == 1
        assert checker.external_violations == 1

    def test_worst_slack(self):
        checker = ClockConditionChecker()
        checker.add(_stamp(1.0, 0.2))
        checker.add(_stamp(1.0, 0.8))
        assert checker.worst_slack_s() == pytest.approx(-0.8)

    def test_worst_slack_clamped_to_zero(self):
        checker = ClockConditionChecker()
        checker.add(_stamp(1.0, 5.0))
        assert checker.worst_slack_s() == 0.0

    def test_empty_checker(self):
        checker = ClockConditionChecker()
        assert checker.violations == 0
        assert checker.worst_slack_s() == 0.0
        summary = checker.summary()
        assert summary["messages"] == 0

    def test_summary_keys(self):
        checker = ClockConditionChecker()
        checker.add(_stamp(0.0, 1.0))
        assert set(checker.summary()) == {
            "messages",
            "violations",
            "internal_violations",
            "external_violations",
            "worst_slack_s",
        }
