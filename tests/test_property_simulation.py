"""Property-based tests of whole-simulation invariants.

These drive randomly generated (but deadlock-free) workloads through the
full runtime + analysis pipeline and check invariants that must hold for
*every* trace: causal order of matched messages in true time, severity
bounds, and metric-hierarchy containment.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.patterns import (
    GRID_LATE_SENDER,
    GRID_WAIT_AT_BARRIER,
    LATE_SENDER,
    MPI,
    P2P,
    TIME,
    WAIT_AT_BARRIER,
)
from repro.analysis.replay import analyze_run
from repro.apps.imbalance import make_barrier_imbalance_app, make_imbalance_app
from repro.clocks.clock import ClockEnsemble
from repro.sim.runtime import MetaMPIRuntime
from repro.topology.metacomputer import Placement
from repro.topology.presets import uniform_metacomputer

work_values = st.floats(min_value=0.0, max_value=0.05, allow_nan=False)

SETTINGS = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _analyze(work, seed, app_factory, synchronized=False):
    mc = uniform_metacomputer(metahost_count=2, node_count=2, cpus_per_node=1)
    placement = Placement.block(mc, 4)
    kwargs = {}
    if synchronized:
        kwargs["clocks"] = ClockEnsemble.synchronized(placement.ranks_by_node())
    runtime = MetaMPIRuntime(mc, placement, seed=seed, **kwargs)
    run = runtime.run(app_factory(work))
    return analyze_run(run)


class TestSimulationInvariants:
    @given(
        work=st.lists(work_values, min_size=4, max_size=4),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @SETTINGS
    def test_true_time_causality(self, work, seed):
        """With perfect clocks, no matched message ever violates causality."""
        result = _analyze(
            dict(enumerate(work)), seed, make_imbalance_app, synchronized=True
        )
        assert result.violations.violations == 0

    @given(
        work=st.lists(work_values, min_size=4, max_size=4),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @SETTINGS
    def test_metric_hierarchy_containment(self, work, seed):
        result = _analyze(dict(enumerate(work)), seed, make_imbalance_app)
        eps = 1e-9
        assert result.metric_total(MPI) <= result.metric_total(TIME) + eps
        assert result.metric_total(P2P) <= result.metric_total(MPI) + eps
        assert result.metric_total(LATE_SENDER) <= result.metric_total(P2P) + eps
        assert (
            result.metric_total(GRID_LATE_SENDER)
            <= result.metric_total(LATE_SENDER) + eps
        )

    @given(
        work=st.lists(work_values, min_size=4, max_size=4),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @SETTINGS
    def test_barrier_wait_bounded_by_spread(self, work, seed):
        """Total barrier wait cannot exceed n × the compute spread (plus
        collective costs, which are microseconds here)."""
        work_map = dict(enumerate(work))
        result = _analyze(work_map, seed, make_barrier_imbalance_app)
        spread = max(work) - min(work)
        bound = 4 * (spread + 0.01)
        assert result.metric_total(WAIT_AT_BARRIER) <= bound
        assert (
            result.metric_total(GRID_WAIT_AT_BARRIER)
            <= result.metric_total(WAIT_AT_BARRIER) + 1e-9
        )

    @given(seed=st.integers(min_value=0, max_value=2**16))
    @SETTINGS
    def test_equal_work_has_negligible_waits(self, seed):
        work = {r: 0.02 for r in range(4)}
        result = _analyze(work, seed, make_barrier_imbalance_app)
        # Jitter-level waits only: far below the 20 ms compute block.
        assert result.metric_total(WAIT_AT_BARRIER) < 0.02
