"""Tests for linear clock models and ensembles."""

import pytest

from repro.clocks.clock import ClockEnsemble, LinearClock, perfect_clock
from repro.errors import ClockError
from repro.ids import NodeId


class TestLinearClock:
    def test_offset_at_time_zero(self):
        clock = LinearClock(offset_s=0.5, drift=0.0)
        assert clock.local_time(0.0) == pytest.approx(0.5)

    def test_drift_accumulates(self):
        clock = LinearClock(offset_s=0.0, drift=1e-6)
        assert clock.local_time(100.0) == pytest.approx(100.0 + 1e-4)

    def test_negative_drift(self):
        clock = LinearClock(offset_s=0.0, drift=-1e-6)
        assert clock.local_time(100.0) < 100.0

    def test_true_time_inverts_local_time(self):
        clock = LinearClock(offset_s=3e-3, drift=5e-6)
        for t in (0.0, 1.0, 123.456):
            assert clock.true_time(clock.local_time(t)) == pytest.approx(t)

    def test_offset_to_changes_linearly(self):
        a = LinearClock(offset_s=1e-3, drift=2e-6)
        b = LinearClock(offset_s=-1e-3, drift=-2e-6)
        o0 = a.offset_to(b, 0.0)
        o1 = a.offset_to(b, 100.0)
        assert o0 == pytest.approx(2e-3)
        assert o1 - o0 == pytest.approx(4e-4)

    def test_read_without_rng_is_deterministic(self):
        clock = LinearClock(noise_s=1.0)
        assert clock.read(5.0) == clock.read(5.0)

    def test_read_with_noise(self, rng):
        clock = LinearClock(noise_s=1e-6)
        values = {clock.read(5.0, rng) for _ in range(10)}
        assert len(values) > 1

    def test_rejects_stopped_clock(self):
        with pytest.raises(ClockError):
            LinearClock(drift=-1.0)

    def test_rejects_negative_noise(self):
        with pytest.raises(ClockError):
            LinearClock(noise_s=-1e-9)

    def test_perfect_clock_is_identity(self):
        clock = perfect_clock()
        assert clock.local_time(42.0) == 42.0


class TestClockEnsemble:
    def _nodes(self, n=4):
        return [NodeId(0, i) for i in range(n)]

    def test_requires_clocks(self):
        with pytest.raises(ClockError):
            ClockEnsemble({})

    def test_random_ensemble_within_bounds(self, rng):
        ensemble = ClockEnsemble.random(
            self._nodes(), rng, offset_scale_s=1e-3, drift_scale=1e-6
        )
        for node in self._nodes():
            clock = ensemble.clock(node)
            assert abs(clock.offset_s) <= 1e-3
            assert abs(clock.drift) <= 1e-6

    def test_random_ensemble_is_diverse(self, rng):
        ensemble = ClockEnsemble.random(self._nodes(), rng)
        offsets = {ensemble.clock(n).offset_s for n in self._nodes()}
        assert len(offsets) == 4

    def test_unknown_node_raises(self, rng):
        ensemble = ClockEnsemble.random(self._nodes(), rng)
        with pytest.raises(ClockError):
            ensemble.clock(NodeId(9, 9))

    def test_synchronized_ensemble(self):
        ensemble = ClockEnsemble.synchronized(self._nodes())
        assert ensemble.local_time(NodeId(0, 2), 7.0) == 7.0

    def test_contains_and_len(self, rng):
        ensemble = ClockEnsemble.random(self._nodes(3), rng)
        assert NodeId(0, 1) in ensemble
        assert NodeId(5, 5) not in ensemble
        assert len(ensemble) == 3
