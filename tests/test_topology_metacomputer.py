"""Tests for the metacomputer model and process placement."""

import pytest

from repro.errors import RoutingError, TopologyError
from repro.ids import Location, NodeId
from repro.topology.machine import CpuSpec, homogeneous_metahost
from repro.topology.metacomputer import Metacomputer, Placement
from repro.topology.network import LinkClass, LinkSpec


def _host(name, nodes=2, cpus=2, speed=1.0):
    return homogeneous_metahost(
        name, node_count=nodes, cpus_per_node=cpus, cpu=CpuSpec("c", 2.0, speed)
    )


def _external():
    return LinkSpec(
        latency_s=1e-3, jitter_s=1e-6, bandwidth_bps=1e9, link_class=LinkClass.EXTERNAL
    )


@pytest.fixture
def mc():
    return Metacomputer(
        [_host("alpha"), _host("beta")], external_links={(0, 1): _external()}
    )


class TestMetacomputer:
    def test_requires_metahosts(self):
        with pytest.raises(TopologyError):
            Metacomputer([])

    def test_rejects_duplicate_names(self):
        with pytest.raises(TopologyError):
            Metacomputer([_host("a"), _host("a")])

    def test_rejects_self_link(self):
        with pytest.raises(TopologyError):
            Metacomputer([_host("a"), _host("b")], external_links={(0, 0): _external()})

    def test_metahost_index_by_name(self, mc):
        assert mc.metahost_index("beta") == 1
        with pytest.raises(TopologyError):
            mc.metahost_index("gamma")

    def test_is_metacomputing(self, mc):
        assert mc.is_metacomputing
        assert not Metacomputer([_host("solo")]).is_metacomputing

    def test_total_cpus_and_nodes(self, mc):
        assert mc.total_cpus == 8
        assert mc.nodes() == [NodeId(0, 0), NodeId(0, 1), NodeId(1, 0), NodeId(1, 1)]

    def test_routing_loopback(self, mc):
        link = mc.link_between(Location(0, 0, 0), Location(0, 0, 1))
        assert link.link_class is LinkClass.LOOPBACK

    def test_routing_internal(self, mc):
        link = mc.link_between(Location(0, 0, 0), Location(0, 1, 1))
        assert link.link_class is LinkClass.INTERNAL
        assert "alpha" in link.name

    def test_routing_external_symmetric(self, mc):
        a = mc.link_between(Location(0, 0, 0), Location(1, 1, 1))
        b = mc.link_between(Location(1, 1, 1), Location(0, 0, 0))
        assert a is b
        assert a.link_class is LinkClass.EXTERNAL

    def test_missing_external_link_raises(self):
        mc = Metacomputer([_host("a"), _host("b")])
        with pytest.raises(RoutingError):
            mc.external_link(0, 1)

    def test_default_external_fallback(self):
        mc = Metacomputer([_host("a"), _host("b")], default_external=_external())
        assert mc.external_link(0, 1).link_class is LinkClass.EXTERNAL

    def test_external_link_same_machine_raises(self, mc):
        with pytest.raises(RoutingError):
            mc.external_link(1, 1)

    def test_latency_model_memoized(self, mc):
        spec = mc.internal_link(0)
        assert mc.latency_model(spec) is mc.latency_model(spec)

    def test_unknown_machine_raises(self, mc):
        with pytest.raises(TopologyError):
            mc.metahost(5)


class TestPlacementBlock:
    def test_fills_in_order(self, mc):
        placement = Placement.block(mc, 5)
        machines = [placement.machine_of(r) for r in range(5)]
        assert machines == [0, 0, 0, 0, 1]
        assert placement.location(4) == Location(1, 0, 4, 0)

    def test_rejects_overflow(self, mc):
        with pytest.raises(TopologyError):
            Placement.block(mc, 9)

    def test_rejects_zero(self, mc):
        with pytest.raises(TopologyError):
            Placement.block(mc, 0)

    def test_spans_metahosts(self, mc):
        assert Placement.block(mc, 5).spans_metahosts()
        assert not Placement.block(mc, 4).spans_metahosts()
        assert not Placement.block(mc, 5).spans_metahosts([0, 1])

    def test_ranks_by_node(self, mc):
        placement = Placement.block(mc, 4)
        by_node = placement.ranks_by_node()
        assert by_node[NodeId(0, 0)] == [0, 1]
        assert by_node[NodeId(0, 1)] == [2, 3]


class TestPlacementFromCounts:
    def test_table3_style_blocks(self, mc):
        placement = Placement.from_counts(mc, [("beta", 1, 2), ("alpha", 2, 1)])
        assert placement.size == 4
        assert placement.machine_of(0) == 1
        assert placement.machine_of(2) == 0
        # alpha ranks land on distinct nodes (1 proc/node)
        assert placement.location(2).node != placement.location(3).node

    def test_same_metahost_twice_uses_fresh_nodes(self, mc):
        placement = Placement.from_counts(mc, [("alpha", 1, 1), ("alpha", 1, 1)])
        assert placement.location(0).node == 0
        assert placement.location(1).node == 1

    def test_rejects_node_overflow(self, mc):
        with pytest.raises(TopologyError):
            Placement.from_counts(mc, [("alpha", 3, 1)])

    def test_rejects_ppn_overflow(self, mc):
        with pytest.raises(TopologyError):
            Placement.from_counts(mc, [("alpha", 1, 3)])

    def test_slot_bounds(self, mc):
        placement = Placement.block(mc, 2)
        with pytest.raises(TopologyError):
            placement.slot(2)
