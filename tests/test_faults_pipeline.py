"""End-to-end fault injection: runtime, sync, archives, degraded replay."""

import warnings

import pytest

from repro.analysis.replay import analyze_run
from repro.analysis.request import AnalysisRequest
from repro.errors import (
    CommunicationTimeoutError,
    EncodingError,
    PartialTraceWarning,
    TraceError,
)
from repro.faults import (
    FaultPlan,
    LinkOutage,
    MessageLoss,
    PingFault,
    TraceCorruption,
    TraceTruncation,
)
from repro.sim.runtime import MetaMPIRuntime
from repro.topology.metacomputer import Placement
from repro.topology.presets import uniform_metacomputer

NPROCS = 4


def _app(ctx):
    with ctx.region("main"):
        for round_index in range(3):
            with ctx.region("step"):
                yield ctx.compute(0.002 * (1 + ctx.rank))
                # The slowest rank sends to the fastest: the message (and
                # any retransmission backoff) sits on the critical path.
                if ctx.rank == NPROCS - 1:
                    yield ctx.comm.send(0, 64_000, tag=round_index)
                elif ctx.rank == 0:
                    yield ctx.comm.recv(NPROCS - 1, tag=round_index)
            yield ctx.comm.barrier()


def _run(fault_plan=None, seed=5):
    mc = uniform_metacomputer(metahost_count=2, node_count=2, cpus_per_node=1)
    placement = Placement.block(mc, NPROCS)
    runtime = MetaMPIRuntime(mc, placement, seed=seed, fault_plan=fault_plan)
    return runtime.run(_app)


def _archive_bytes(run):
    """Every archive file of every metahost, as one comparable dict."""
    out = {}
    for machine in run.machines_used:
        ns = run.namespaces[machine]
        for name in sorted(ns.list_dir(run.archive_path)):
            out[(machine, name)] = ns.read_file(f"{run.archive_path}/{name}")
    return out


class TestEmptyPlanIdentity:
    def test_empty_plan_is_byte_identical(self):
        baseline = _run(fault_plan=None)
        empty = _run(fault_plan=FaultPlan())
        assert _archive_bytes(baseline) == _archive_bytes(empty)
        assert baseline.stats.finish_time == empty.stats.finish_time
        assert empty.fault_counters is None


class TestTransportFaults:
    def test_loss_recovered_and_counted(self):
        plan = FaultPlan(specs=(MessageLoss("external", 0.4),), seed=2)
        run = _run(fault_plan=plan)
        assert run.fault_counters is not None
        assert run.fault_counters.retransmits > 0
        assert run.stats.retransmits == run.fault_counters.retransmits
        # The run still analyzes cleanly: no trace was damaged.
        result = analyze_run(run, request=AnalysisRequest(degraded=True))
        assert len(result.analyzed_ranks) == NPROCS

    def test_retransmission_delays_surface_in_timing(self):
        clean = _run(fault_plan=None)
        lossy = _run(fault_plan=FaultPlan(specs=(MessageLoss("external", 0.4),), seed=2))
        assert lossy.stats.finish_time > clean.stats.finish_time

    def test_permanent_outage_raises_timeout(self):
        plan = FaultPlan(specs=(LinkOutage("external", 0.0, 1e6),), seed=0)
        with pytest.raises(CommunicationTimeoutError):
            _run(fault_plan=plan)


class TestMeasurementFaults:
    def test_dropped_pings_are_reissued(self):
        plan = FaultPlan(specs=(PingFault("external", drop_prob=0.5),), seed=3)
        run = _run(fault_plan=plan)
        assert run.fault_counters.pings_dropped > 0
        assert run.fault_counters.pings_reissued == run.fault_counters.pings_dropped
        assert not run.sync_data.failures
        analyze_run(run)  # strict analysis still works

    def test_total_ping_loss_degrades_but_completes(self):
        plan = FaultPlan(specs=(PingFault("external", drop_prob=1.0),), seed=3)
        run = _run(fault_plan=plan)
        assert run.sync_data.failures  # measurements were abandoned
        with pytest.raises(Exception):
            analyze_run(run)  # strict replay refuses the gap
        result = analyze_run(run, request=AnalysisRequest(degraded=True))
        assert len(result.analyzed_ranks) == NPROCS


class TestDegradedReplay:
    def test_truncated_rank_excluded_with_warning(self):
        plan = FaultPlan(specs=(TraceTruncation(1, keep_fraction=0.3),), seed=0)
        run = _run(fault_plan=plan)
        assert run.fault_counters.traces_truncated == 1
        with pytest.raises((TraceError, EncodingError)):
            analyze_run(run)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            result = analyze_run(run, request=AnalysisRequest(degraded=True))
        assert any(
            issubclass(w.category, PartialTraceWarning) for w in caught
        )
        assert result.degraded
        assert result.excluded_ranks == [1]
        assert sorted(result.analyzed_ranks) == [0, 2, 3]
        record = result.completeness[1]
        assert not record.complete
        assert 0.0 <= record.completeness < 1.0

    def test_corrupted_rank_excluded(self):
        plan = FaultPlan(
            specs=(TraceCorruption(2, at_fraction=0.5, length=6),), seed=0
        )
        run = _run(fault_plan=plan)
        assert run.fault_counters.traces_corrupted == 1
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", PartialTraceWarning)
            result = analyze_run(run, request=AnalysisRequest(degraded=True))
        assert result.excluded_ranks == [2]
        assert result.completeness[2].events > 0

    def test_degraded_analysis_still_finds_wait_states(self):
        from repro.analysis.patterns import WAIT_AT_BARRIER

        plan = FaultPlan(specs=(TraceTruncation(1, keep_fraction=0.3),), seed=0)
        run = _run(fault_plan=plan)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", PartialTraceWarning)
            result = analyze_run(run, request=AnalysisRequest(degraded=True))
        # Surviving ranks still wait at the barrier for the slow ranks.
        assert result.metric_total(WAIT_AT_BARRIER) > 0.0

    def test_degraded_on_clean_run_matches_strict(self):
        run = _run(fault_plan=None)
        strict = analyze_run(run)
        degraded = analyze_run(run, request=AnalysisRequest(degraded=True))
        assert degraded.analyzed_ranks == strict.analyzed_ranks
        for metric in ("time", "mpi", "late-sender", "wait-at-barrier"):
            assert degraded.metric_total(metric) == pytest.approx(
                strict.metric_total(metric)
            )


class TestFaultExperiment:
    def test_ladder_smoke(self):
        from repro.experiments.faults import escalating_fault_plans, run_fault_experiment

        report = run_fault_experiment(seed=1, coupling_intervals=1)
        assert len(report.runs) == len(escalating_fault_plans(1))
        clean, lossy = report.runs[0], report.runs[1]
        assert clean.completed and not clean.degraded and clean.counters is None
        assert lossy.completed and lossy.counters.retransmits > 0
        assert lossy.patterns  # wait states survive the faults
        # The last rung is the deterministic link-death abort.
        assert not report.runs[-1].completed
        assert "CommunicationTimeoutError" in report.runs[-1].error
        text = report.text()
        assert "retransmits" in text and "ABORTED" in text
