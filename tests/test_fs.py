"""Tests for simulated file systems, mount namespaces, and the
runtime archive-management protocol."""

import pytest

from repro.errors import ArchiveCreationAborted, FileSystemError
from repro.fs.filesystem import (
    MountNamespace,
    SimFileSystem,
    private_namespaces,
    shared_namespace,
)
from repro.fs.manager import ensure_archives


class TestSimFileSystem:
    def test_create_dir_with_parents(self):
        fs = SimFileSystem("a")
        fs.create_dir("/work/deep/nested")
        assert fs.is_dir("/work/deep")
        assert fs.is_dir("/work/deep/nested")

    def test_create_dir_twice_rejected(self):
        fs = SimFileSystem("a")
        fs.create_dir("/work")
        with pytest.raises(FileSystemError):
            fs.create_dir("/work")
        fs.create_dir("/work", exist_ok=True)  # opt-in idempotency

    def test_relative_paths_rejected(self):
        fs = SimFileSystem("a")
        with pytest.raises(FileSystemError):
            fs.create_dir("work")

    def test_file_round_trip(self):
        fs = SimFileSystem("a")
        fs.create_dir("/d")
        fs.write_file("/d/f.bin", b"\x01\x02")
        assert fs.read_file("/d/f.bin") == b"\x01\x02"
        assert fs.is_file("/d/f.bin")

    def test_write_requires_parent_dir(self):
        fs = SimFileSystem("a")
        with pytest.raises(FileSystemError):
            fs.write_file("/missing/f", b"x")

    def test_overwrite_control(self):
        fs = SimFileSystem("a")
        fs.create_dir("/d")
        fs.write_file("/d/f", b"1")
        with pytest.raises(FileSystemError):
            fs.write_file("/d/f", b"2")
        fs.write_file("/d/f", b"2", overwrite=True)
        assert fs.read_file("/d/f") == b"2"

    def test_read_missing_file(self):
        with pytest.raises(FileSystemError):
            SimFileSystem("a").read_file("/nope")

    def test_list_dir(self):
        fs = SimFileSystem("a")
        fs.create_dir("/d/sub")
        fs.write_file("/d/f1", b"")
        fs.write_file("/d/sub/f2", b"")
        assert fs.list_dir("/d") == ["f1", "sub"]

    def test_total_bytes(self):
        fs = SimFileSystem("a")
        fs.create_dir("/d")
        fs.write_file("/d/f", b"abc")
        assert fs.total_bytes == 3


class TestMountNamespace:
    def test_longest_prefix_wins(self):
        root = SimFileSystem("root")
        work = SimFileSystem("work")
        ns = MountNamespace({"/": root, "/work": work})
        assert ns.resolve("/work/x") is work
        assert ns.resolve("/home/x") is root

    def test_no_mount_covers_path(self):
        ns = MountNamespace({"/work": SimFileSystem("w")})
        with pytest.raises(FileSystemError):
            ns.resolve("/other")

    def test_same_path_different_storage(self):
        """The defining metacomputer property (paper Section 4)."""
        ns_a = MountNamespace({"/work": SimFileSystem("site-a")})
        ns_b = MountNamespace({"/work": SimFileSystem("site-b")})
        ns_a.create_dir("/work/exp")
        assert ns_a.is_dir("/work/exp")
        assert not ns_b.is_dir("/work/exp")
        assert not ns_a.shares_storage_with(ns_b, "/work")

    def test_shared_namespace_helper(self):
        namespaces = shared_namespace(["a", "b"])
        namespaces[0].create_dir("/work/x")
        assert namespaces[1].is_dir("/work/x")
        assert namespaces[0].shares_storage_with(namespaces[1], "/work")

    def test_private_namespaces_helper(self):
        namespaces = private_namespaces(["a", "b"])
        namespaces[0].create_dir("/work/x")
        assert not namespaces[1].is_dir("/work/x")


class TestArchiveProtocol:
    def _setup(self, shared=False):
        names = ["m0", "m1", "m2"]
        namespaces = shared_namespace(names) if shared else private_namespaces(names)
        ranks = {0: [0, 1], 1: [2, 3], 2: [4, 5]}
        return namespaces, ranks

    def test_private_storage_creates_partial_archives(self):
        namespaces, ranks = self._setup()
        outcome = ensure_archives(namespaces, "/work/exp", ranks)
        assert outcome.partial_archive_count == 3
        # Rank 0 created once; the two other local masters created locally.
        assert outcome.creation_attempts == 3
        for machine in (0, 1, 2):
            assert namespaces[machine].is_dir("/work/exp")

    def test_shared_storage_creates_single_archive(self):
        namespaces, ranks = self._setup(shared=True)
        outcome = ensure_archives(namespaces, "/work/exp", ranks)
        assert outcome.partial_archive_count == 1
        assert outcome.creation_attempts == 1  # only rank zero created

    def test_protocol_steps_recorded(self):
        namespaces, ranks = self._setup()
        outcome = ensure_archives(namespaces, "/work/exp", ranks)
        actions = [s.action for s in outcome.steps]
        assert actions.count("create") == 1
        assert actions.count("check") == 3  # one local master per metahost
        assert actions.count("create-local") == 2
        assert actions[-1] == "allreduce"

    def test_root_must_lead_its_machine(self):
        namespaces, _ = self._setup()
        ranks = {0: [1, 0], 1: [2, 3], 2: [4, 5]}
        with pytest.raises(FileSystemError):
            ensure_archives(namespaces, "/work/exp", ranks)

    def test_existing_directory_aborts(self):
        namespaces, ranks = self._setup()
        namespaces[0].create_dir("/work/exp")
        with pytest.raises(ArchiveCreationAborted):
            ensure_archives(namespaces, "/work/exp", ranks)

    def test_mismatched_machine_tables_rejected(self):
        namespaces, ranks = self._setup()
        del namespaces[2]
        with pytest.raises(FileSystemError):
            ensure_archives(namespaces, "/work/exp", ranks)

    def test_unplaced_root_rejected(self):
        namespaces, ranks = self._setup()
        with pytest.raises(FileSystemError):
            ensure_archives(namespaces, "/work/exp", ranks, root_rank=99)


class TestArchiveProtocolUnderFaults:
    """The abort and retry paths, driven by injected file-system faults."""

    NAMES = {0: "m0", 1: "m1", 2: "m2"}

    def _setup(self, specs, shared=False, seed=0):
        from repro.faults import FaultInjector, FaultPlan

        names = list(self.NAMES.values())
        namespaces = shared_namespace(names) if shared else private_namespaces(names)
        ranks = {0: [0, 1], 1: [2, 3], 2: [4, 5]}
        injector = FaultInjector(FaultPlan(specs=tuple(specs), seed=seed))
        return namespaces, ranks, injector

    def _ensure(self, namespaces, ranks, injector):
        return ensure_archives(
            namespaces,
            "/work/exp",
            ranks,
            injector=injector,
            machine_names=self.NAMES,
        )

    def test_transient_failure_retried_then_succeeds(self):
        from repro.faults import FileSystemFault

        namespaces, ranks, injector = self._setup(
            [FileSystemFault("m1", fail_count=2)]
        )
        outcome = self._ensure(namespaces, ranks, injector)
        # Still exactly one successful creation per distinct file system.
        assert outcome.partial_archive_count == 3
        assert outcome.creation_attempts == 3
        assert outcome.retries == 2
        actions = [s.action for s in outcome.steps]
        assert actions.count("create-failed") == 2
        # The failure was absorbed before the all-reduce: everyone sees an
        # archive, so the protocol ends in ok=True.
        assert outcome.steps[-1].action == "allreduce"
        assert outcome.steps[-1].detail == "ok=True"

    def test_permanent_local_failure_aborts_with_culprits(self):
        from repro.errors import ArchiveCreationAborted
        from repro.faults import FileSystemFault

        namespaces, ranks, injector = self._setup(
            [FileSystemFault("m2", permanent=True)]
        )
        with pytest.raises(ArchiveCreationAborted) as info:
            self._ensure(namespaces, ranks, injector)
        assert info.value.failing_ranks == (4, 5)
        assert info.value.failing_machines == ("m2",)
        assert info.value.path == "/work/exp"

    def test_permanent_root_failure_aborts_immediately(self):
        from repro.errors import ArchiveCreationAborted
        from repro.faults import FileSystemFault

        namespaces, ranks, injector = self._setup(
            [FileSystemFault("m0", permanent=True)]
        )
        with pytest.raises(ArchiveCreationAborted) as info:
            self._ensure(namespaces, ranks, injector)
        assert info.value.failing_ranks == (0,)
        assert info.value.failing_machines == ("m0",)

    def test_shared_storage_single_transient_failure_recovers(self):
        from repro.faults import FileSystemFault

        namespaces, ranks, injector = self._setup(
            [FileSystemFault("*", fail_count=1)], shared=True
        )
        outcome = self._ensure(namespaces, ranks, injector)
        assert outcome.partial_archive_count == 1
        assert outcome.creation_attempts == 1
        assert outcome.retries == 1

    def test_partial_archive_count_correct_under_faults(self):
        from repro.faults import FileSystemFault

        namespaces, ranks, injector = self._setup(
            [FileSystemFault("m1", fail_count=1), FileSystemFault("m2", fail_count=2)]
        )
        outcome = self._ensure(namespaces, ranks, injector)
        assert outcome.partial_archive_count == 3
        assert set(outcome.archive_fs_of_machine.values()) == {
            "fs-m0",
            "fs-m1",
            "fs-m2",
        }

    def test_genuine_errors_are_not_retried(self):
        """A pre-existing directory aborts without burning retry attempts."""
        from repro.errors import ArchiveCreationAborted
        from repro.faults import FileSystemFault

        namespaces, ranks, injector = self._setup(
            [FileSystemFault("m1", fail_count=1)]
        )
        namespaces[0].create_dir("/work/exp")
        with pytest.raises(ArchiveCreationAborted):
            self._ensure(namespaces, ranks, injector)
