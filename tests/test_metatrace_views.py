"""Tool views on the paper's MetaTrace workload (Experiment 1).

These assert that the supporting views — trace statistics, the timeline,
serialization, and the rendered report — tell the *same story* as the
pattern analysis on the real multi-physics workload, not just on synthetic
micro-tests.
"""

import json

import pytest

from repro.analysis.patterns import GRID_WAIT_AT_BARRIER, LATE_SENDER
from repro.analysis.stats import render_statistics, statistics_of
from repro.report.render import render_analysis
from repro.report.serialize import experiment_from_dict, result_to_dict
from repro.report.timeline import render_timeline

pytestmark = pytest.mark.slow


class TestMetaTraceStatistics:
    @pytest.fixture(scope="class")
    def stats(self, metatrace_exp1):
        return statistics_of(metatrace_exp1.result)

    def test_velocity_field_dominates_volume(self, stats, metatrace_exp1):
        """The 200 MB coupling transfer dwarfs halo and steering traffic."""
        config_chunk = 200 * 1024 * 1024 // 16
        intervals = 6
        expected_velocity = 16 * intervals * config_chunk
        # Velocity chunks travel across metahosts (XD1 ↔ Trace sites).
        assert stats.comm.external_bytes >= expected_velocity
        assert stats.comm.external_bytes > 10 * stats.comm.internal_bytes

    def test_heaviest_pairs_are_coupling_pairs(self, stats):
        """Top traffic pairs are Trace→Partrace velocity transfers."""
        for (src, dst), _volume in stats.comm.heaviest_pairs(5):
            assert src >= 16  # Trace ranks
            assert dst < 16  # Partrace ranks

    def test_cgiteration_is_hottest_compute_region(self, stats):
        profile = stats.region_profile(top=30)
        by_name = {r.name: r for r in profile}
        assert "cgiteration" in by_name
        # 16 trace ranks × 6 intervals × 25 iterations.
        assert by_name["cgiteration"].visits == 16 * 6 * 25

    def test_partrace_ranks_mostly_mpi_waiting(self, stats, metatrace_exp1):
        """Partrace (ranks 0-15) waits at the barrier — high MPI fraction."""
        partrace = [stats.mpi_fraction_of_rank[r] for r in range(16)]
        trace = [stats.mpi_fraction_of_rank[r] for r in range(16, 32)]
        assert sum(partrace) / 16 > sum(trace) / 16

    def test_rendering(self, stats):
        text = render_statistics(stats)
        assert "cgiteration" in text or "trackparticles" in text


class TestMetaTraceTimeline:
    def test_timeline_shows_partrace_waiting(self, metatrace_exp1):
        result = metatrace_exp1.result
        view = render_timeline(
            result.timelines,
            result.definitions.regions,
            result.callpaths,
            columns=60,
            ranks=[0, 20],  # one Partrace rank (XD1), one Trace rank
        )
        # The Partrace rank spends a large share of cells in barriers.
        partrace_row = view.rows[0]
        assert partrace_row.count("B") > 10

    def test_full_timeline_renders(self, metatrace_exp1):
        result = metatrace_exp1.result
        view = render_timeline(
            result.timelines,
            result.definitions.regions,
            result.callpaths,
            columns=40,
        )
        assert len(view.rows) == 32


class TestMetaTraceSerialization:
    def test_result_document_round_trip(self, metatrace_exp1):
        doc = result_to_dict(metatrace_exp1.result, "exp1")
        text = json.dumps(doc)  # must be JSON-serializable
        restored = experiment_from_dict(json.loads(text))
        assert restored.metric_total(LATE_SENDER) == pytest.approx(
            metatrace_exp1.result.metric_total(LATE_SENDER)
        )
        assert restored.pct(GRID_WAIT_AT_BARRIER) == pytest.approx(
            metatrace_exp1.result.pct(GRID_WAIT_AT_BARRIER), abs=0.01
        )

    def test_document_records_scheme_and_violations(self, metatrace_exp1):
        doc = result_to_dict(metatrace_exp1.result, "exp1")
        assert doc["scheme"] == "two-hierarchical-offsets"
        assert doc["violations"]["violations"] == 0


class TestMetaTraceReport:
    def test_full_report_names_the_story(self, metatrace_exp1):
        text = render_analysis(
            metatrace_exp1.result, metric=GRID_WAIT_AT_BARRIER, min_pct=0.5
        )
        assert "Grid Wait at Barrier" in text
        assert "ReadVelFieldFromTrace" in text
        assert "FZJ-XD1" in text
