"""Tests for the VIOLA / IBM POWER topology presets."""

import pytest

from repro.ids import Location
from repro.topology.network import LinkClass
from repro.topology.presets import (
    CAESAR,
    FH_BRS,
    FZJ_FHBRS_LATENCY_S,
    FZJ_XD1,
    IBM_POWER,
    ibm_aix_power,
    single_cluster,
    uniform_metacomputer,
    viola_testbed,
)


class TestViola:
    def test_three_sites(self):
        mc = viola_testbed()
        assert mc.machine_names() == [CAESAR, FH_BRS, FZJ_XD1]

    def test_node_counts_match_paper(self):
        mc = viola_testbed()
        assert mc.metahost(mc.metahost_index(CAESAR)).node_count == 32
        assert mc.metahost(mc.metahost_index(FH_BRS)).node_count == 6
        assert mc.metahost(mc.metahost_index(FZJ_XD1)).node_count == 60

    def test_cpus_per_node_match_paper(self):
        mc = viola_testbed()
        assert mc.metahost(mc.metahost_index(CAESAR)).nodes[0].cpus == 2
        assert mc.metahost(mc.metahost_index(FH_BRS)).nodes[0].cpus == 4
        assert mc.metahost(mc.metahost_index(FZJ_XD1)).nodes[0].cpus == 2

    def test_all_site_pairs_linked(self):
        mc = viola_testbed()
        for a in range(3):
            for b in range(a + 1, 3):
                link = mc.external_link(a, b)
                assert link.link_class is LinkClass.EXTERNAL
                assert link.latency_s == pytest.approx(FZJ_FHBRS_LATENCY_S)

    def test_speed_gap_fhbrs_vs_caesar(self):
        mc = viola_testbed()
        fhbrs = mc.metahost(mc.metahost_index(FH_BRS)).nodes[0].cpu
        caesar = mc.metahost(mc.metahost_index(CAESAR)).nodes[0].cpu
        assert fhbrs.speed_factor / caesar.speed_factor == pytest.approx(2.0)

    def test_internal_latencies_match_table1(self):
        mc = viola_testbed()
        fzj = mc.internal_link(mc.metahost_index(FZJ_XD1))
        fhbrs = mc.internal_link(mc.metahost_index(FH_BRS))
        assert fzj.latency_s == pytest.approx(2.15e-5)
        assert fhbrs.latency_s == pytest.approx(4.44e-5)

    def test_external_links_have_congestion(self):
        mc = viola_testbed()
        assert mc.external_link(0, 2).congestion_prob > 0
        assert mc.internal_link(0).congestion_prob == 0


class TestOtherPresets:
    def test_ibm_power_single_machine(self):
        mc = ibm_aix_power()
        assert mc.machine_names() == [IBM_POWER]
        assert not mc.is_metacomputing
        assert mc.metahost(0).nodes[0].cpus == 16

    def test_single_cluster(self):
        mc = single_cluster(node_count=3, cpus_per_node=2)
        assert mc.total_cpus == 6

    def test_uniform_default_external(self):
        mc = uniform_metacomputer(metahost_count=3)
        link = mc.link_between(Location(0, 0, 0), Location(2, 0, 0))
        assert link.link_class is LinkClass.EXTERNAL
