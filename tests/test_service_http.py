"""The HTTP front end and the CLI client commands, in process."""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.cli import main as cli_main
from repro.service import ServiceConfig, create_app
from repro.service.http import ServiceHTTPServer


def _request(base, method, path, body=None, timeout=30.0):
    data = json.dumps(body).encode("utf-8") if body is not None else None
    headers = {"Content-Type": "application/json"} if data else {}
    request = urllib.request.Request(
        base + path, data=data, method=method, headers=headers
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, dict(response.headers), json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, dict(exc.headers), json.loads(exc.read())


@pytest.fixture
def server(tmp_path):
    config = ServiceConfig(
        store_path=str(tmp_path / "jobs.jsonl"),
        port=0,
        queue_limit=2,
        pool_workers=1,
        default_jobs=1,
    )
    app = create_app(config)
    httpd = ServiceHTTPServer((config.host, config.port), app)
    host, port = httpd.server_address[:2]
    app.startup()
    thread = threading.Thread(
        target=httpd.serve_forever, kwargs={"poll_interval": 0.05}, daemon=True
    )
    thread.start()
    try:
        yield f"http://{host}:{port}", app
    finally:
        httpd.shutdown()
        thread.join(timeout=10)
        httpd.server_close()
        app.shutdown()


def _poll_done(base, key, timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status, _, body = _request(base, "GET", f"/jobs/{key}")
        assert status == 200
        if body["job"]["status"] in ("done", "failed"):
            return body["job"]
        time.sleep(0.05)
    raise AssertionError(f"job {key} never settled")


SIM = {"kind": "simulate", "experiment": "imbalance", "seed": 1}


class TestEndpoints:
    def test_health_and_readiness(self, server):
        base, app = server
        assert _request(base, "GET", "/healthz")[0] == 200
        status, _, body = _request(base, "GET", "/readyz")
        assert status == 200 and body["status"] == "ready"
        assert body["queued"] == 0

    def test_submission_lifecycle(self, server):
        base, _ = server
        status, _, body = _request(base, "POST", "/jobs", SIM)
        assert status == 202 and body["disposition"] == "created"
        key = body["job"]["key"]
        assert body["url"] == f"/jobs/{key}"

        # Result is 409 until done, 200 after.
        status, _, early = _request(base, "GET", f"/jobs/{key}/result")
        if early.get("status") != "done":
            assert status == 409
        job = _poll_done(base, key)
        assert job["status"] == "done"
        status, _, body = _request(base, "GET", f"/jobs/{key}/result")
        assert status == 200
        assert body["result"]["integrity_ok"] is True

        # Idempotent resubmission: 200 + cached, byte-identical result.
        status, _, again = _request(base, "POST", "/jobs", SIM)
        assert status == 200 and again["disposition"] == "cached"
        assert again["job"]["result"] == body["result"]

        status, _, listing = _request(base, "GET", "/jobs")
        assert status == 200 and len(listing["jobs"]) == 1

    def test_validation_and_routing_errors(self, server):
        base, _ = server
        assert _request(base, "POST", "/jobs", {"kind": "nope", "experiment": "x"})[0] == 400
        assert _request(base, "POST", "/nope", {})[0] == 404
        assert _request(base, "GET", "/jobs/feedbead")[0] == 404
        assert _request(base, "GET", "/jobs/feedbead/result")[0] == 404
        assert _request(base, "GET", "/nope")[0] == 404
        # Malformed JSON body → 400, not a connection reset.
        request = urllib.request.Request(
            base + "/jobs", data=b"{not json", method="POST",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 400

    def test_queue_full_gets_429_with_retry_after(self, server, monkeypatch):
        base, app = server
        import repro.service.app as app_module

        gate = threading.Event()

        def gated(spec, *, pool=None, progress=None, deadline=None):
            gate.wait(timeout=60)
            return {"kind": spec["kind"]}, None

        monkeypatch.setattr(app_module, "execute_job", gated)
        try:
            codes = []
            for seed in (10, 11, 12, 13):
                status, headers, body = _request(
                    base, "POST", "/jobs", {**SIM, "seed": seed}
                )
                codes.append(status)
                if status == 429:
                    assert "Retry-After" in headers
                    assert body["retry_after_s"] > 0
            assert codes.count(429) >= 1
            assert codes[:2] == [202, 202]
        finally:
            gate.set()

    def test_severity_endpoint(self, server):
        base, _ = server
        spec = {
            "kind": "analyze",
            "experiment": "figure7",
            "seed": 3,
            "jobs": 1,
            "config": {"coupling_intervals": 2},
        }
        _, _, body = _request(base, "POST", "/jobs", spec)
        key = body["job"]["key"]
        job = _poll_done(base, key, timeout=120)
        assert job["status"] == "done", job["error"]
        status, _, overview = _request(base, "GET", f"/jobs/{key}/severity")
        assert status == 200 and "late-sender" in overview["metrics"]
        status, _, detail = _request(
            base, "GET", f"/jobs/{key}/severity?metric=late-sender"
        )
        assert status == 200 and detail["by_rank"]
        status, _, _ = _request(base, "GET", f"/jobs/{key}/severity?metric=bogus")
        assert status == 409
        # The analyze result carries the report text and the execution story.
        _, _, result = _request(base, "GET", f"/jobs/{key}/result")
        assert result["result"]["text"].startswith("Experiment 2")


    def test_severity_timeline_endpoint(self, server):
        base, _ = server
        spec = {
            "kind": "analyze",
            "experiment": "figure6",
            "seed": 2,
            "jobs": 1,
            "config": {
                "timeline": True,
                "coupling_intervals": 1,
                "window_s": 0.5,
                "stride_s": 0.25,
            },
        }
        _, _, body = _request(base, "POST", "/jobs", spec)
        key = body["job"]["key"]
        job = _poll_done(base, key, timeout=120)
        assert job["status"] == "done", job["error"]

        status, _, overview = _request(base, "GET", f"/jobs/{key}/severity/timeline")
        assert status == 200
        assert overview["window_s"] == 0.5 and overview["stride_s"] == 0.25
        assert overview["metrics"], "timeline came back empty"
        series = overview["metrics"]["mpi"]["series"]
        assert series and all(len(point) == 2 for point in series)
        assert overview["metrics"]["mpi"]["by_rank"]

        status, _, detail = _request(
            base, "GET", f"/jobs/{key}/severity/timeline?metric=mpi"
        )
        assert status == 200 and list(detail["metrics"]) == ["mpi"]

        status, _, body = _request(
            base, "GET", f"/jobs/{key}/severity/timeline?metric=bogus"
        )
        assert status == 409 and "bogus" in body["error"]

        # An analyze job submitted without timeline config has none to serve.
        plain = {"kind": "analyze", "experiment": "figure6", "seed": 2, "jobs": 1,
                 "config": {"coupling_intervals": 1}}
        _, _, body = _request(base, "POST", "/jobs", plain)
        plain_key = body["job"]["key"]
        assert plain_key != key
        assert _poll_done(base, plain_key, timeout=120)["status"] == "done"
        status, _, body = _request(base, "GET", f"/jobs/{plain_key}/severity/timeline")
        assert status == 409 and "timeline" in body["error"]

        # Non-analyze jobs never carry one.
        _, _, body = _request(base, "POST", "/jobs", SIM)
        sim_key = body["job"]["key"]
        _poll_done(base, sim_key)
        status, _, body = _request(base, "GET", f"/jobs/{sim_key}/severity/timeline")
        assert status == 409 and "only analyze jobs" in body["error"]


class TestCliClient:
    def test_submit_wait_prints_result(self, server, capsys):
        base, _ = server
        code = cli_main(
            [
                "submit", "imbalance", "--kind", "simulate", "--seed", "5",
                "--url", base, "--wait", "--poll-interval", "0.05",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "created: job " in out
        assert '"integrity_ok": true' in out

    def test_submit_invalid_is_an_error_exit(self, server, capsys):
        base, _ = server
        code = cli_main(["submit", "figure99", "--url", base])
        assert code == 1
        assert "rejected" in capsys.readouterr().err

    def test_submit_unreachable_service(self, capsys):
        code = cli_main(
            ["submit", "figure6", "--url", "http://127.0.0.1:9", "--seed", "1"]
        )
        assert code == 1
        assert "cannot reach service" in capsys.readouterr().err

    def test_jobs_listing_over_http_and_offline(self, server, capsys, tmp_path):
        base, app = server
        cli_main(
            [
                "submit", "imbalance", "--kind", "simulate", "--seed", "6",
                "--url", base, "--wait", "--poll-interval", "0.05",
            ]
        )
        capsys.readouterr()
        assert cli_main(["jobs", "--url", base]) == 0
        http_listing = capsys.readouterr().out
        assert "done" in http_listing and "simulate/imbalance" in http_listing
        # Offline listing reads the journal the service is holding open.
        assert cli_main(["jobs", "--store", app.config.store_path]) == 0
        offline_listing = capsys.readouterr().out
        assert offline_listing == http_listing

    def test_jobs_empty_store(self, tmp_path, capsys):
        empty = tmp_path / "none.jsonl"
        empty.write_text("")
        assert cli_main(["jobs", "--store", str(empty)]) == 0
        assert "no jobs" in capsys.readouterr().out

    def test_closed_stdout_is_not_a_traceback(self, tmp_path):
        """`repro jobs | head`-style early reader exit must stay quiet.

        The read end of the pipe is closed before the CLI (slowed by
        interpreter startup) writes, so the write hits EPIPE.  A clean
        CLI exits 141 (128+SIGPIPE) with empty stderr; losing the race
        and finishing the write is a plain 0.
        """
        import os
        import subprocess
        import sys

        from repro.service import JobStore, JobRecord, canonical_spec, job_key

        store = tmp_path / "jobs.jsonl"
        spec = canonical_spec({"kind": "simulate", "experiment": "imbalance"})
        with JobStore(str(store)) as jobs:
            jobs.save(JobRecord(key=job_key(spec), seq=0, spec=spec))

        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in ["src", env.get("PYTHONPATH", "")] if p
        )
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "jobs", "--store", str(store)],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            env=env,
        )
        proc.stdout.close()
        stderr = proc.stderr.read()
        proc.stderr.close()
        assert proc.wait(timeout=60) in (0, 141)
        assert b"Traceback" not in stderr, stderr.decode()
