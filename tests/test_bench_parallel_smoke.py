"""Tier-1 smoke test for the parallel-analysis benchmark harness.

Runs the real harness at reduced scale (one coupling interval, one
repetition) and validates the ``BENCH_parallel.json`` schema, so schema or
harness regressions are caught by the fast suite without the full 64-rank
benchmark (``pytest -m perf benchmarks/``).
"""

import importlib.util
import json
import pathlib
import sys

import pytest

_BENCH_PATH = (
    pathlib.Path(__file__).resolve().parents[1]
    / "benchmarks"
    / "bench_parallel_analysis.py"
)


def _load_harness():
    spec = importlib.util.spec_from_file_location(
        "bench_parallel_analysis", _BENCH_PATH
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("bench_parallel_analysis", module)
    spec.loader.exec_module(module)
    return module


bench = _load_harness()


@pytest.fixture(scope="module")
def tiny_doc():
    return bench.run_parallel_benchmark(
        factor=1, jobs_list=[1, 2], reps=1, coupling_intervals=1, cg_iterations=4
    )


@pytest.mark.perf
class TestParallelBenchSmoke:
    def test_document_matches_schema(self, tiny_doc):
        bench.validate_document(tiny_doc)
        assert tiny_doc["schema"] == bench.SCHEMA
        assert tiny_doc["workload"] == "scaled-experiment1"
        assert tiny_doc["ranks"] == 32
        assert tiny_doc["cpu_count"] >= 1
        assert tiny_doc["trace_bytes"] > 0
        jobs_seen = [row["jobs"] for row in tiny_doc["results"]]
        assert jobs_seen == [1, 2]
        serial = tiny_doc["results"][0]
        assert serial["speedup_vs_serial"] == 1.0
        for row in tiny_doc["results"]:
            assert row["analyze_s"] > 0.0
            assert row["speedup_vs_serial"] > 0.0

    def test_json_round_trips_through_disk(self, tiny_doc, tmp_path):
        out = tmp_path / "BENCH_parallel.json"
        bench.write_document(tiny_doc, out)
        reloaded = json.loads(out.read_text(encoding="utf-8"))
        bench.validate_document(reloaded)
        assert reloaded == json.loads(json.dumps(tiny_doc))

    def test_validation_rejects_bad_documents(self, tiny_doc):
        with pytest.raises(ValueError, match="schema"):
            bench.validate_document({"schema": "something-else", "results": []})
        no_baseline = json.loads(json.dumps(tiny_doc))
        no_baseline["results"] = [
            row for row in no_baseline["results"] if row["jobs"] != 1
        ]
        with pytest.raises(ValueError, match="jobs=1 baseline"):
            bench.validate_document(no_baseline)
        negative = json.loads(json.dumps(tiny_doc))
        negative["results"][0]["analyze_s"] = -1.0
        with pytest.raises(ValueError, match="analyze_s"):
            bench.validate_document(negative)

    def test_cli_writes_artifact(self, tmp_path):
        out = tmp_path / "from_cli.json"
        code = bench.main(
            [
                "--factor", "1",
                "--jobs", "2",
                "--reps", "1",
                "--intervals", "1",
                "--out", str(out),
            ]
        )
        assert code == 0
        doc = json.loads(out.read_text(encoding="utf-8"))
        bench.validate_document(doc)
        # main() force-includes the serial baseline even when --jobs omits it.
        assert [row["jobs"] for row in doc["results"]] == [1, 2]
