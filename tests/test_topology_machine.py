"""Tests for CPU, node, and metahost specifications."""

import pytest

from repro.errors import TopologyError
from repro.topology.machine import CpuSpec, Metahost, NodeSpec, homogeneous_metahost


class TestCpuSpec:
    def test_work_seconds_scales_with_speed(self):
        slow = CpuSpec("a", 2.0, speed_factor=1.0)
        fast = CpuSpec("b", 2.0, speed_factor=2.0)
        assert slow.work_seconds(1.0) == pytest.approx(1.0)
        assert fast.work_seconds(1.0) == pytest.approx(0.5)

    def test_rejects_nonpositive_clock(self):
        with pytest.raises(TopologyError):
            CpuSpec("a", 0.0)

    def test_rejects_nonpositive_speed(self):
        with pytest.raises(TopologyError):
            CpuSpec("a", 2.0, speed_factor=0.0)


class TestNodeSpec:
    def test_rejects_zero_cpus(self):
        with pytest.raises(TopologyError):
            NodeSpec(cpus=0, cpu=CpuSpec("a", 1.0))


class TestMetahost:
    def _cpu(self):
        return CpuSpec("x", 2.0)

    def test_counts(self):
        host = homogeneous_metahost("h", node_count=3, cpus_per_node=4, cpu=self._cpu())
        assert host.node_count == 3
        assert host.cpu_count == 12

    def test_node_lookup_bounds(self):
        host = homogeneous_metahost("h", node_count=2, cpus_per_node=1, cpu=self._cpu())
        assert host.node(1).cpus == 1
        with pytest.raises(TopologyError):
            host.node(2)
        with pytest.raises(TopologyError):
            host.node(-1)

    def test_requires_name_and_nodes(self):
        with pytest.raises(TopologyError):
            Metahost(name="", nodes=[NodeSpec(1, self._cpu())])
        with pytest.raises(TopologyError):
            Metahost(name="h", nodes=[])

    def test_rejects_negative_latency(self):
        with pytest.raises(TopologyError):
            Metahost(
                name="h",
                nodes=[NodeSpec(1, self._cpu())],
                internal_latency_s=-1.0,
            )

    def test_rejects_nonpositive_bandwidth(self):
        with pytest.raises(TopologyError):
            Metahost(
                name="h",
                nodes=[NodeSpec(1, self._cpu())],
                internal_bandwidth_bps=0.0,
            )

    def test_homogeneous_builder_validates_count(self):
        with pytest.raises(TopologyError):
            homogeneous_metahost("h", node_count=0, cpus_per_node=1, cpu=self._cpu())
