"""Tests for the DIMEMAS-style trace-driven predictor."""

import pytest

from repro.analysis.patterns import (
    GRID_WAIT_AT_BARRIER,
    LATE_SENDER,
    WAIT_AT_BARRIER,
)
from repro.analysis.replay import analyze_run
from repro.apps.imbalance import make_barrier_imbalance_app, make_imbalance_app
from repro.errors import ConfigurationError
from repro.predict import predict_run, skeleton_from_run
from repro.predict.skeleton import (
    SendrecvAction,
    invert_bytes_moved,
)
from repro.topology.metacomputer import Placement
from repro.topology.presets import single_cluster, uniform_metacomputer

from tests.conftest import run_app


class TestInvertBytesMoved:
    @pytest.mark.parametrize(
        "op,is_root",
        [
            ("MPI_Allreduce", False),
            ("MPI_Allgather", False),
            ("MPI_Alltoall", False),
            ("MPI_Bcast", True),
            ("MPI_Bcast", False),
            ("MPI_Reduce", True),
            ("MPI_Reduce", False),
            ("MPI_Gather", True),
            ("MPI_Scatter", False),
        ],
    )
    def test_inverts_bytes_moved(self, op, is_root):
        from repro.sim.collectives import bytes_moved

        size, nprocs = 4096, 8
        comm_rank = 0 if is_root else 3
        sent, recvd = bytes_moved(op, size, nprocs, comm_rank, root=0)
        assert invert_bytes_moved(op, sent, recvd, nprocs, is_root) == size

    def test_barrier_is_zero(self):
        assert invert_bytes_moved("MPI_Barrier", 0, 0, 4, False) == 0


class TestSkeletonExtraction:
    @pytest.fixture(scope="class")
    def source(self):
        mc = single_cluster(node_count=4, cpus_per_node=1, speed=2.0)
        work = {0: 0.04, 1: 0.01, 2: 0.01, 3: 0.01}
        run = run_app(mc, 4, make_imbalance_app(work, iterations=2), seed=3)
        return run, analyze_run(run)

    def test_skeleton_covers_all_ranks(self, source):
        run, result = source
        skeleton = skeleton_from_run(run, result)
        assert skeleton.world_size == 4
        assert skeleton.source_speed == {r: 2.0 for r in range(4)}

    def test_compute_segments_exclude_waits(self, source):
        run, result = source
        skeleton = skeleton_from_run(run, result)
        # Rank 0 computed 2 × 0.04 ref-s at speed 2 → 0.04 s wall; the
        # skeleton's compute must be close to that, NOT including the
        # barrier/ring waiting the other ranks saw.
        assert skeleton.compute_seconds(0) == pytest.approx(0.04, rel=0.1)
        assert skeleton.compute_seconds(1) == pytest.approx(0.01, rel=0.2)

    def test_communication_ops_preserved(self, source):
        run, result = source
        skeleton = skeleton_from_run(run, result)
        sendrecvs = [
            a for a in skeleton.actions[0] if isinstance(a, SendrecvAction)
        ]
        assert len(sendrecvs) == 2  # one ring exchange per iteration

    def test_region_attribution_preserved(self, source):
        run, result = source
        skeleton = skeleton_from_run(run, result)
        from repro.predict.skeleton import RegionAction

        names = {
            a.name
            for actions in skeleton.actions.values()
            for a in actions
            if isinstance(a, RegionAction)
        }
        assert "ring" in names


class TestPrediction:
    def test_self_prediction_matches_direct(self):
        """Replaying a skeleton on its own machine reproduces the waits."""
        mc = single_cluster(node_count=4, cpus_per_node=1)
        work = {0: 0.1, 1: 0.01, 2: 0.01, 3: 0.01}
        run = run_app(mc, 4, make_barrier_imbalance_app(work), seed=5)
        direct = analyze_run(run)
        skeleton = skeleton_from_run(run, direct)
        predicted = predict_run(skeleton, mc, Placement.block(mc, 4), seed=6)
        assert predicted.result.metric_total(WAIT_AT_BARRIER) == pytest.approx(
            direct.metric_total(WAIT_AT_BARRIER), rel=0.05
        )

    def test_speed_rescaling(self):
        """Compute segments shrink when the target CPUs are faster."""
        slow = single_cluster(node_count=2, cpus_per_node=1, speed=1.0)
        fast = single_cluster(
            name="fast", node_count=2, cpus_per_node=1, speed=4.0
        )
        work = {0: 0.1, 1: 0.1}
        run = run_app(slow, 2, make_barrier_imbalance_app(work), seed=1)
        skeleton = skeleton_from_run(run)
        predicted = predict_run(skeleton, fast, Placement.block(fast, 2), seed=2)
        # 100 ms of work at 4× speed → ≈25 ms plus barrier costs.
        assert predicted.predicted_seconds < 0.04
        assert predicted.predicted_seconds > 0.02

    def test_metacomputer_port_creates_grid_waits(self):
        """Port a single-cluster trace onto a metacomputer: the barrier
        imbalance turns into *grid* waiting, before ever running there."""
        source_mc = single_cluster(node_count=4, cpus_per_node=1)
        work = {0: 0.1, 1: 0.1, 2: 0.01, 3: 0.01}
        run = run_app(source_mc, 4, make_barrier_imbalance_app(work), seed=7)
        direct = analyze_run(run)
        assert direct.metric_total(GRID_WAIT_AT_BARRIER) == 0.0

        target = uniform_metacomputer(metahost_count=2, node_count=2, cpus_per_node=1)
        predicted = predict_run(
            skeleton_from_run(run, direct), target, Placement.block(target, 4), seed=8
        )
        assert predicted.result.metric_total(GRID_WAIT_AT_BARRIER) > 0.15

    def test_size_mismatch_rejected(self):
        mc = single_cluster(node_count=4, cpus_per_node=1)
        work = {r: 0.01 for r in range(4)}
        run = run_app(mc, 4, make_barrier_imbalance_app(work))
        skeleton = skeleton_from_run(run)
        with pytest.raises(ConfigurationError):
            predict_run(skeleton, mc, Placement.block(mc, 2))

    def test_prediction_is_analyzable_end_to_end(self):
        mc = single_cluster(node_count=2, cpus_per_node=1)
        work = {0: 0.05, 1: 0.01}
        run = run_app(mc, 2, make_imbalance_app(work), seed=9)
        predicted = predict_run(
            skeleton_from_run(run), mc, Placement.block(mc, 2), seed=10
        )
        # Late Sender localized under the reconstructed 'ring' region.
        assert predicted.result.metric_under_region(LATE_SENDER, "ring") > 0.0


@pytest.mark.slow
class TestMetaTracePrediction:
    def test_exp1_to_exp2_what_if(self, metatrace_exp1, metatrace_exp2):
        """Predicting the homogeneous port from the heterogeneous trace
        reproduces the direct Experiment-2 results."""
        from repro.experiments.configs import experiment2

        skeleton = skeleton_from_run(metatrace_exp1.run, metatrace_exp1.result)
        mc, placement, _config = experiment2()
        predicted = predict_run(skeleton, mc, placement, seed=6)
        direct = metatrace_exp2.result
        assert predicted.result.pct(GRID_WAIT_AT_BARRIER) == 0.0
        assert predicted.result.pct(WAIT_AT_BARRIER) == pytest.approx(
            direct.pct(WAIT_AT_BARRIER), abs=0.5
        )
        predicted_steering = predicted.result.metric_under_region(
            LATE_SENDER, "getsteering"
        )
        direct_steering = direct.metric_under_region(LATE_SENDER, "getsteering")
        assert predicted_steering == pytest.approx(direct_steering, rel=0.2)


class TestScanPrediction:
    def test_scan_survives_skeleton_round_trip(self):
        mc = single_cluster(node_count=4, cpus_per_node=1)

        def app(ctx):
            with ctx.region("main"):
                yield ctx.compute(0.05 if ctx.rank == 0 else 0.01)
                yield ctx.comm.scan(256)

        run = run_app(mc, 4, app, seed=12)
        direct = analyze_run(run)
        predicted = predict_run(
            skeleton_from_run(run, direct), mc, Placement.block(mc, 4), seed=13
        )
        from repro.analysis.patterns import EARLY_SCAN

        assert predicted.result.metric_total(EARLY_SCAN) == pytest.approx(
            direct.metric_total(EARLY_SCAN), rel=0.1
        )
