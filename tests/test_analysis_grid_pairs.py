"""Tests for the fine-grained grid classification (paper §6 future work)."""

import pytest

from repro.analysis.patterns import (
    GRID_LATE_SENDER,
    GRID_WAIT_AT_BARRIER,
    GridPairBreakdown,
)
from repro.analysis.replay import analyze_run
from repro.apps.imbalance import make_barrier_imbalance_app, make_imbalance_app
from repro.topology.presets import uniform_metacomputer

from tests.conftest import run_app


class TestBreakdownAccumulator:
    def test_accumulates_per_pair(self):
        b = GridPairBreakdown()
        b.add("m", 0, 1, 1.0)
        b.add("m", 0, 1, 0.5)
        b.add("m", 1, 0, 0.25)
        assert b.pairs("m") == {(0, 1): 1.5, (1, 0): 0.25}
        assert b.total("m") == pytest.approx(1.75)

    def test_zero_values_ignored(self):
        b = GridPairBreakdown()
        b.add("m", 0, 1, 0.0)
        assert b.pairs("m") == {}

    def test_named_rendering(self):
        b = GridPairBreakdown()
        b.add("m", 0, 1, 1.0)
        named = b.named("m", ["alpha", "beta"])
        assert named == {("alpha", "beta"): 1.0}

    def test_top_pair(self):
        b = GridPairBreakdown()
        b.add("m", 0, 1, 1.0)
        b.add("m", 2, 1, 3.0)
        assert b.top_pair("m") == ((2, 1), 3.0)
        assert b.top_pair("missing") == ((-1, -1), 0.0)


class TestEndToEnd:
    @pytest.fixture(scope="class")
    def three_host_result(self):
        # Three metahosts; metahost 0 (ranks 0-1) is slow → it causes
        # barrier waiting on metahosts 1 and 2.
        mc = uniform_metacomputer(metahost_count=3, node_count=1, cpus_per_node=2)
        work = {0: 0.2, 1: 0.2, 2: 0.01, 3: 0.01, 4: 0.01, 5: 0.01}
        run = run_app(mc, 6, make_barrier_imbalance_app(work), seed=8)
        return analyze_run(run)

    def test_causer_is_the_slow_metahost(self, three_host_result):
        pairs = three_host_result.grid_pairs.pairs(GRID_WAIT_AT_BARRIER)
        assert pairs, "expected grid barrier waiting"
        causers = {causer for (causer, _waiter) in pairs}
        assert causers == {0}

    def test_waiters_are_the_fast_metahosts(self, three_host_result):
        pairs = three_host_result.grid_pairs.pairs(GRID_WAIT_AT_BARRIER)
        waiters = {waiter for (_causer, waiter) in pairs}
        assert waiters == {1, 2}

    def test_pair_totals_match_grid_metric(self, three_host_result):
        """Sum over machine pairs == the grid pattern's cube total."""
        pair_total = three_host_result.grid_pairs.total(GRID_WAIT_AT_BARRIER)
        cube_total = three_host_result.metric_total(GRID_WAIT_AT_BARRIER)
        assert pair_total == pytest.approx(cube_total, rel=1e-9)

    def test_named_breakdown_via_result(self, three_host_result):
        named = three_host_result.grid_pair_breakdown(GRID_WAIT_AT_BARRIER)
        assert ("metahost0", "metahost1") in named

    def test_late_sender_pair_direction(self):
        """Slow sender's metahost causes the receiving metahost to wait."""
        mc = uniform_metacomputer(metahost_count=2, node_count=2, cpus_per_node=1)
        # Rank 1 (metahost 0) is slow; its ring successor rank 2 lives on
        # metahost 1 and waits for it.
        work = {0: 0.01, 1: 0.2, 2: 0.01, 3: 0.01}
        result = analyze_run(run_app(mc, 4, make_imbalance_app(work), seed=9))
        pairs = result.grid_pairs.pairs(GRID_LATE_SENDER)
        top_pair, value = result.grid_pairs.top_pair(GRID_LATE_SENDER)
        assert top_pair == (0, 1)  # metahost 0 causes metahost 1 to wait
        assert value > 0.15

    def test_single_metahost_has_no_pairs(self):
        from repro.topology.presets import single_cluster

        mc = single_cluster(node_count=4, cpus_per_node=1)
        work = {0: 0.1, 1: 0.01, 2: 0.01, 3: 0.01}
        result = analyze_run(run_app(mc, 4, make_barrier_imbalance_app(work)))
        assert result.grid_pairs.pairs(GRID_WAIT_AT_BARRIER) == {}


class TestMetaTracePairs:
    def test_experiment1_late_sender_pairs(self, metatrace_exp1):
        """CAESAR's slower CPUs cause FH-BRS's grid Late Sender waiting."""
        result = metatrace_exp1.result
        named = result.grid_pair_breakdown(GRID_LATE_SENDER)
        top = max(named, key=named.get)
        assert top == ("CAESAR", "FH-BRS")

    def test_experiment1_barrier_pairs(self, metatrace_exp1):
        """Trace (on FH-BRS/CAESAR) causes Partrace's (XD1) barrier waits."""
        result = metatrace_exp1.result
        named = result.grid_pair_breakdown(GRID_WAIT_AT_BARRIER)
        waiting_on_xd1 = sum(
            v for (causer, waiter), v in named.items() if waiter == "FZJ-XD1"
        )
        assert waiting_on_xd1 / sum(named.values()) > 0.9
