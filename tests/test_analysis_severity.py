"""Tests for the severity cube."""

import pytest

from repro.analysis.severity import SeverityCube
from repro.errors import AnalysisError


@pytest.fixture
def cube():
    c = SeverityCube()
    c.add("late-sender", 1, 0, 0.5)
    c.add("late-sender", 1, 1, 0.25)
    c.add("late-sender", 2, 0, 1.0)
    c.add("time", 1, 0, 10.0)
    return c


class TestAccumulation:
    def test_totals(self, cube):
        assert cube.total("late-sender") == pytest.approx(1.75)
        assert cube.total("time") == pytest.approx(10.0)
        assert cube.total("missing") == 0.0

    def test_accumulates_same_cell(self):
        cube = SeverityCube()
        cube.add("m", 0, 0, 1.0)
        cube.add("m", 0, 0, 2.0)
        assert cube.value("m", 0, 0) == pytest.approx(3.0)

    def test_zero_values_ignored(self):
        cube = SeverityCube()
        cube.add("m", 0, 0, 0.0)
        assert cube.metrics() == []

    def test_negative_rejected(self):
        with pytest.raises(AnalysisError):
            SeverityCube().add("m", 0, 0, -1.0)

    def test_by_callpath(self, cube):
        assert cube.by_callpath("late-sender") == {
            1: pytest.approx(0.75),
            2: pytest.approx(1.0),
        }

    def test_by_rank(self, cube):
        assert cube.by_rank("late-sender") == {
            0: pytest.approx(1.5),
            1: pytest.approx(0.25),
        }

    def test_at_cell_row(self, cube):
        assert cube.at("late-sender", 1) == {0: 0.5, 1: 0.25}
        assert cube.at("late-sender", 99) == {}

    def test_top_callpaths(self, cube):
        top = cube.top_callpaths("late-sender", n=1)
        assert top == [(2, pytest.approx(1.0))]

    def test_cells_iteration(self, cube):
        cells = sorted(cube.cells("late-sender"))
        assert cells == [(1, 0, 0.5), (1, 1, 0.25), (2, 0, 1.0)]


class TestAlgebraSupport:
    def test_copy_is_deep(self, cube):
        clone = cube.copy()
        clone.add("late-sender", 1, 0, 1.0)
        assert cube.value("late-sender", 1, 0) == pytest.approx(0.5)

    def test_scale(self, cube):
        scaled = cube.scale(2.0)
        assert scaled.total("late-sender") == pytest.approx(3.5)
        assert cube.total("late-sender") == pytest.approx(1.75)

    def test_scale_rejects_negative(self, cube):
        with pytest.raises(AnalysisError):
            cube.scale(-1.0)
