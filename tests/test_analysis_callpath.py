"""Tests for call-path interning and reconstruction."""

import pytest

from repro.analysis.callpath import ROOT_PATH, CallPathBuilder, CallPathRegistry
from repro.errors import AnalysisError
from repro.trace.regions import RegionRegistry


@pytest.fixture
def regions():
    reg = RegionRegistry()
    for name in ("main", "solve", "MPI_Recv"):
        reg.register(name)
    return reg


class TestRegistry:
    def test_interning_is_stable(self):
        reg = CallPathRegistry()
        a = reg.intern(ROOT_PATH, 0)
        b = reg.intern(ROOT_PATH, 0)
        assert a == b
        assert len(reg) == 1

    def test_same_region_different_parents(self):
        reg = CallPathRegistry()
        root_a = reg.intern(ROOT_PATH, 0)
        root_b = reg.intern(ROOT_PATH, 1)
        child_a = reg.intern(root_a, 2)
        child_b = reg.intern(root_b, 2)
        assert child_a != child_b

    def test_frames_and_depth(self):
        reg = CallPathRegistry()
        a = reg.intern(ROOT_PATH, 0)
        b = reg.intern(a, 1)
        c = reg.intern(b, 2)
        assert reg.frames(c) == [0, 1, 2]
        assert reg.path(c).depth == 2
        assert reg.path(a).depth == 0

    def test_children_and_roots(self):
        reg = CallPathRegistry()
        a = reg.intern(ROOT_PATH, 0)
        b = reg.intern(a, 1)
        c = reg.intern(a, 2)
        assert set(reg.children(a)) == {b, c}
        assert reg.roots() == [a]

    def test_render(self, regions):
        reg = CallPathRegistry()
        a = reg.intern(ROOT_PATH, regions.id_of("main"))
        b = reg.intern(a, regions.id_of("solve"))
        assert reg.render(b, regions) == "main/solve"

    def test_find(self, regions):
        reg = CallPathRegistry()
        a = reg.intern(ROOT_PATH, regions.id_of("main"))
        b = reg.intern(a, regions.id_of("MPI_Recv"))
        assert reg.find(regions, "main", "MPI_Recv") == b
        assert reg.find(regions, "main") == a
        assert reg.find(regions, "solve") is None
        assert reg.find(regions, "unknown-region") is None

    def test_unknown_cpid_raises(self):
        with pytest.raises(AnalysisError):
            CallPathRegistry().path(0)


class TestBuilder:
    def test_stack_tracking(self):
        reg = CallPathRegistry()
        builder = CallPathBuilder(reg)
        assert builder.current == ROOT_PATH
        a = builder.enter(0)
        b = builder.enter(1)
        assert builder.current == b
        assert builder.exit(1) == b
        assert builder.current == a
        builder.exit(0)
        assert builder.current == ROOT_PATH

    def test_mismatched_exit_rejected(self):
        builder = CallPathBuilder(CallPathRegistry())
        builder.enter(0)
        with pytest.raises(AnalysisError):
            builder.exit(1)

    def test_exit_on_empty_stack_rejected(self):
        builder = CallPathBuilder(CallPathRegistry())
        with pytest.raises(AnalysisError):
            builder.exit(0)

    def test_recursion_creates_distinct_paths(self):
        reg = CallPathRegistry()
        builder = CallPathBuilder(reg)
        outer = builder.enter(0)
        inner = builder.enter(0)  # recursive call
        assert inner != outer
        assert reg.frames(inner) == [0, 0]
