"""Round-trip tests for synchronization-data serialization."""

import numpy as np
import pytest

from repro.clocks.clock import ClockEnsemble
from repro.clocks.serialize import (
    measurement_from_dict,
    measurement_to_dict,
    sync_data_from_dict,
    sync_data_to_dict,
)
from repro.clocks.sync import SCHEMES, collect_sync_data
from repro.errors import ClockError
from repro.ids import NodeId
from repro.topology.presets import uniform_metacomputer


@pytest.fixture(scope="module")
def sync_data():
    mc = uniform_metacomputer(metahost_count=2, node_count=2, cpus_per_node=1)
    nodes = {0: [NodeId(0, 0), NodeId(0, 1)], 1: [NodeId(1, 0), NodeId(1, 1)]}
    rng = np.random.default_rng(2)
    clocks = ClockEnsemble.random(nodes[0] + nodes[1], rng)
    return collect_sync_data(mc, nodes, clocks, NodeId(0, 0), 0.0, 10.0, rng)


class TestRoundTrip:
    def test_none_measurement(self):
        assert measurement_to_dict(None) is None
        assert measurement_from_dict(None) is None

    def test_measurement_round_trip(self, sync_data):
        m = sync_data.record(NodeId(1, 1)).flat_start
        restored = measurement_from_dict(measurement_to_dict(m))
        assert restored == m

    def test_sync_data_round_trip(self, sync_data):
        restored = sync_data_from_dict(sync_data_to_dict(sync_data))
        assert restored.master_node == sync_data.master_node
        assert restored.local_masters == sync_data.local_masters
        assert set(restored.records) == set(sync_data.records)
        for node, rec in sync_data.records.items():
            assert restored.records[node].flat_start == rec.flat_start
            assert restored.records[node].meta_end == rec.meta_end

    def test_schemes_agree_after_round_trip(self, sync_data):
        restored = sync_data_from_dict(sync_data_to_dict(sync_data))
        for scheme in SCHEMES:
            original = scheme.convert_all(sync_data)
            recovered = scheme.convert_all(restored)
            for node in sync_data.records:
                assert original.to_master(node, 5.0) == pytest.approx(
                    recovered.to_master(node, 5.0)
                )

    def test_failures_round_trip(self, sync_data):
        # Absent failures must not appear in the document at all (keeps
        # fault-free archives byte-identical to pre-fault-injection ones).
        assert "failures" not in sync_data_to_dict(sync_data)
        import copy

        damaged = copy.deepcopy(sync_data)
        damaged.failures.append("flat@start: all pings lost")
        payload = sync_data_to_dict(damaged)
        assert payload["failures"] == ["flat@start: all pings lost"]
        restored = sync_data_from_dict(payload)
        assert restored.failures == damaged.failures

    def test_malformed_inputs_raise(self):
        with pytest.raises(ClockError):
            sync_data_from_dict({"master_node": [0, 0]})
        with pytest.raises(ClockError):
            measurement_from_dict({"node": [0, 0]})
        with pytest.raises(ClockError):
            sync_data_from_dict(
                {"master_node": "not-a-node", "local_masters": {}, "records": []}
            )
