"""Tests for MPI_Scan and the Early Scan pattern."""

import pytest

from repro.analysis.patterns import metric_by_name
from repro.analysis.patterns.base import EARLY_SCAN
from repro.analysis.replay import analyze_run
from repro.sim import collectives as coll
from repro.sim.transfer import SimParams
from repro.topology.presets import single_cluster
from tests.conftest import run_app
from tests.test_sim_mpi_p2p import run_world


@pytest.fixture
def mc():
    return single_cluster(node_count=4, cpus_per_node=1)


class TestScanSemantics:
    def test_inclusive_prefix_results(self, mc):
        got = {}

        def app(ctx):
            result = yield ctx.comm.scan(8, data=ctx.rank * 10)
            got[ctx.rank] = result

        run_world(mc, 3, app)
        assert got[0] == {0: 0}
        assert got[1] == {0: 0, 1: 10}
        assert got[2] == {0: 0, 1: 10, 2: 20}

    def test_rank_waits_only_for_lower_ranks(self, mc):
        """Rank 0 exits quickly even while rank 2 is still computing."""
        after = {}

        def app(ctx):
            yield ctx.compute(0.1 * ctx.rank)
            yield ctx.comm.scan(8)
            after[ctx.rank] = ctx.now

        run_world(mc, 3, app)
        assert after[0] < 0.05  # not held back by higher ranks
        assert after[2] >= 0.2

    def test_rank_blocked_by_slowest_lower_rank(self, mc):
        after = {}

        def app(ctx):
            yield ctx.compute(0.3 if ctx.rank == 0 else 0.0)
            yield ctx.comm.scan(8)
            after[ctx.rank] = ctx.now

        run_world(mc, 3, app)
        # Everybody's prefix includes rank 0, which arrives at 0.3.
        assert all(t >= 0.3 for t in after.values())

    def test_cost_model_exit_times(self, mc):
        exits = coll.collective_exit_times(
            coll.SCAN,
            {0: 5.0, 1: 0.0, 2: 0.0},
            root=0,
            size_bytes=64,
            metacomputer=mc,
            locations={
                r: __import__("repro.ids", fromlist=["Location"]).Location(0, 0, r)
                for r in range(3)
            },
            params=SimParams(),
        ).exit_times
        # Rank 1's prefix includes the late rank 0.
        assert exits[1] >= 5.0
        assert exits[2] >= 5.0

    def test_bytes_moved(self):
        assert coll.bytes_moved(coll.SCAN, 100, 4, 0, 0) == (100, 0)
        assert coll.bytes_moved(coll.SCAN, 100, 4, 2, 0) == (100, 100)
        assert coll.bytes_moved(coll.SCAN, 100, 4, 3, 0) == (0, 100)


class TestEarlyScanPattern:
    def test_metric_registered(self):
        assert metric_by_name(EARLY_SCAN).parent == "mpi-collective"

    def test_detected_end_to_end(self, mc):
        def app(ctx):
            with ctx.region("main"):
                # Rank 0 is late: everyone's prefix waits on it.
                yield ctx.compute(0.2 if ctx.rank == 0 else 0.01)
                yield ctx.comm.scan(64)

        result = analyze_run(run_app(mc, 4, app, seed=3))
        early_scan = result.cube.by_rank(EARLY_SCAN)
        assert result.metric_total(EARLY_SCAN) > 0.4  # 3 ranks × ~0.19 s
        assert early_scan.get(0, 0.0) < 0.01  # the culprit never waits

    def test_late_high_rank_costs_nothing(self, mc):
        def app(ctx):
            with ctx.region("main"):
                # The HIGHEST rank is late: nobody's prefix includes it
                # except its own, so no Early Scan waiting exists.
                yield ctx.compute(0.2 if ctx.rank == ctx.size - 1 else 0.01)
                yield ctx.comm.scan(64)

        result = analyze_run(run_app(mc, 4, app, seed=4))
        assert result.metric_total(EARLY_SCAN) < 0.02
