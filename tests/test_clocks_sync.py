"""Tests for the three synchronization schemes.

The central claims (paper Section 4, validated in Section 5):

* flat interpolation removes drift but intra-metahost *relative* offsets of
  remote metahosts inherit the external-link measurement error;
* the hierarchical scheme keeps intra-metahost relative errors at
  internal-link precision while still aligning metahosts globally.
"""

import numpy as np
import pytest

from repro.clocks.clock import ClockEnsemble, LinearClock
from repro.clocks.measurement import OffsetMeasurement
from repro.clocks.sync import (
    SCHEMES,
    FlatInterpolation,
    FlatSingleOffset,
    HierarchicalInterpolation,
    LinearConverter,
    SyncData,
    collect_sync_data,
    true_master_time,
)
from repro.errors import ClockError
from repro.ids import NodeId
from repro.topology.presets import uniform_metacomputer


def _measurement(node, reference, offset, at_slave_local, true_offset=None):
    return OffsetMeasurement(
        node=node,
        reference=reference,
        offset_s=offset,
        reference_local_s=at_slave_local - offset,
        slave_local_s=at_slave_local,
        rtt_s=1e-4,
        true_offset_s=offset if true_offset is None else true_offset,
        true_time_s=at_slave_local,
    )


class TestLinearConverter:
    def test_identity(self):
        c = LinearConverter.identity()
        assert c.convert(123.456) == 123.456

    def test_single_offset(self):
        m = _measurement(NodeId(0, 1), NodeId(0, 0), offset=2.0, at_slave_local=10.0)
        c = LinearConverter.from_single_offset(m)
        assert c.convert(10.0) == pytest.approx(8.0)
        assert c.slope == 1.0

    def test_interpolation_exact_for_linear_clocks(self):
        master = LinearClock()
        slave = LinearClock(offset_s=1e-2, drift=5e-5)
        anchors = []
        for t in (0.0, 100.0):
            local = slave.local_time(t)
            anchors.append(
                _measurement(
                    NodeId(0, 1),
                    NodeId(0, 0),
                    offset=slave.offset_to(master, t),
                    at_slave_local=local,
                )
            )
        c = LinearConverter.from_interpolation(*anchors)
        for t in (0.0, 33.0, 100.0, 150.0):
            local = slave.local_time(t)
            assert c.convert(local) == pytest.approx(master.local_time(t), abs=1e-9)

    def test_interpolation_degenerates_to_single_offset(self):
        m = _measurement(NodeId(0, 1), NodeId(0, 0), offset=1.0, at_slave_local=5.0)
        c = LinearConverter.from_interpolation(m, m)
        assert c.convert(5.0) == pytest.approx(4.0)

    def test_interpolation_guards_noise_dominated_baseline(self):
        """Anchors within ~100 RTTs of each other yield no drift fit.

        A very short run can land the start- and end-round winning
        exchanges almost at the same instant; the offset difference is
        then pure measurement error and a fitted gradient extrapolates
        it to millisecond-scale conversion error (enough to fabricate
        clock-condition violations on a perfect-clock run).  The
        converter must degrade to the single-offset form instead.
        """
        node, ref = NodeId(1, 0), NodeId(0, 0)
        # rtt_s is 1e-4 in _measurement, so the guard kicks in below 1e-2.
        start = _measurement(node, ref, offset=1.3e-5, at_slave_local=5.0)
        end = _measurement(node, ref, offset=0.5e-5, at_slave_local=5.005)
        c = LinearConverter.from_interpolation(start, end)
        assert c.slope == 1.0
        assert c.convert(5.0) == pytest.approx(5.0 - 1.3e-5)
        # Well-separated anchors still get the drift fit.
        far = _measurement(node, ref, offset=0.5e-5, at_slave_local=105.0)
        assert LinearConverter.from_interpolation(start, far).slope != 1.0

    def test_composition(self):
        inner = LinearConverter(slope=2.0, intercept=1.0)
        outer = LinearConverter(slope=3.0, intercept=-1.0)
        composed = inner.then(outer)
        for x in (0.0, 1.0, 10.0):
            assert composed.convert(x) == pytest.approx(outer.convert(inner.convert(x)))


class _SyncFixture:
    """A two-metahost machine with drifting clocks and real measurements."""

    def __init__(self, seed=5, drift_scale=3e-6, run_end=60.0):
        self.mc = uniform_metacomputer(
            metahost_count=2, node_count=3, cpus_per_node=1
        )
        rng = np.random.default_rng(seed)
        self.nodes = {
            0: [NodeId(0, 0), NodeId(0, 1), NodeId(0, 2)],
            1: [NodeId(1, 0), NodeId(1, 1), NodeId(1, 2)],
        }
        all_nodes = self.nodes[0] + self.nodes[1]
        self.clocks = ClockEnsemble.random(
            all_nodes, rng, offset_scale_s=5e-3, drift_scale=drift_scale
        )
        self.master = NodeId(0, 0)
        self.run_end = run_end
        self.data = collect_sync_data(
            self.mc,
            self.nodes,
            self.clocks,
            self.master,
            run_start_s=0.0,
            run_end_s=run_end,
            rng=rng,
        )

    def scheme_error_us(self, scheme, node, t):
        converted = scheme.convert_all(self.data)
        local = self.clocks.clock(node).local_time(t)
        truth = true_master_time(self.clocks, self.master, node, local)
        return (converted.to_master(node, local) - truth) * 1e6

    def pair_error_us(self, scheme, node_a, node_b, t):
        """Error of the synchronized *difference* between two nodes."""
        return self.scheme_error_us(scheme, node_a, t) - self.scheme_error_us(
            scheme, node_b, t
        )


@pytest.fixture(scope="module")
def sync_fixture():
    return _SyncFixture()


class TestCollectSyncData:
    def test_master_must_lead_its_machine(self, sync_fixture):
        fx = sync_fixture
        with pytest.raises(ClockError):
            collect_sync_data(
                fx.mc,
                {0: [NodeId(0, 1), NodeId(0, 0)], 1: fx.nodes[1]},
                fx.clocks,
                fx.master,
                0.0,
                1.0,
                np.random.default_rng(0),
            )

    def test_rejects_reversed_interval(self, sync_fixture):
        fx = sync_fixture
        with pytest.raises(ClockError):
            collect_sync_data(
                fx.mc, fx.nodes, fx.clocks, fx.master, 10.0, 5.0,
                np.random.default_rng(0),
            )

    def test_local_masters_chosen(self, sync_fixture):
        data = sync_fixture.data
        assert data.local_masters[0] == NodeId(0, 0)
        assert data.local_masters[1] == NodeId(1, 0)

    def test_master_has_no_flat_measurement(self, sync_fixture):
        rec = sync_fixture.data.record(sync_fixture.master)
        assert rec.flat_start is None

    def test_remote_local_master_has_meta_measurements(self, sync_fixture):
        rec = sync_fixture.data.record(NodeId(1, 0))
        assert rec.meta_start is not None and rec.meta_end is not None

    def test_slaves_have_local_measurements(self, sync_fixture):
        rec = sync_fixture.data.record(NodeId(1, 2))
        assert rec.local_start is not None and rec.local_end is not None


class TestSchemeAccuracy:
    def test_all_schemes_align_master_exactly(self, sync_fixture):
        for scheme in SCHEMES:
            err = sync_fixture.scheme_error_us(scheme, sync_fixture.master, 30.0)
            assert err == pytest.approx(0.0, abs=1e-6)

    def test_single_offset_suffers_from_drift(self, sync_fixture):
        """Without drift compensation, late-run errors grow to drift × time."""
        scheme = FlatSingleOffset()
        node = NodeId(0, 1)
        early = abs(sync_fixture.scheme_error_us(scheme, node, 1.0))
        late = abs(sync_fixture.scheme_error_us(scheme, node, 59.0))
        assert late > early
        assert late > 20.0  # tens of microseconds after a minute

    def test_interpolation_removes_drift_within_machine(self, sync_fixture):
        scheme = FlatInterpolation()
        node = NodeId(0, 1)  # same machine as master: internal link, precise
        for t in (5.0, 30.0, 55.0):
            assert abs(sync_fixture.scheme_error_us(scheme, node, t)) < 5.0

    def test_flat_intra_metahost_pairs_inherit_external_error(self, sync_fixture):
        """The motivating defect: remote slaves are misaligned *mutually*."""
        flat = FlatInterpolation()
        hier = HierarchicalInterpolation()
        flat_pair = abs(
            sync_fixture.pair_error_us(flat, NodeId(1, 1), NodeId(1, 2), 30.0)
        )
        hier_pair = abs(
            sync_fixture.pair_error_us(hier, NodeId(1, 1), NodeId(1, 2), 30.0)
        )
        assert hier_pair < 5.0
        assert hier_pair < flat_pair

    def test_hierarchical_keeps_global_alignment_reasonable(self, sync_fixture):
        """Cross-metahost error stays far below the external latency (1 ms)."""
        scheme = HierarchicalInterpolation()
        for node in (NodeId(1, 0), NodeId(1, 1), NodeId(1, 2)):
            assert abs(sync_fixture.scheme_error_us(scheme, node, 30.0)) < 300.0


class TestSchemeErrors:
    def test_missing_measurements_raise(self):
        data = SyncData(master_node=NodeId(0, 0), local_masters={0: NodeId(0, 0)})
        from repro.clocks.sync import NodeSyncRecord

        data.records[NodeId(0, 1)] = NodeSyncRecord(node=NodeId(0, 1), machine=0)
        with pytest.raises(ClockError):
            FlatSingleOffset().converters(data)
        with pytest.raises(ClockError):
            FlatInterpolation().converters(data)
        with pytest.raises(ClockError):
            HierarchicalInterpolation().converters(data)

    def test_non_strict_schemes_degrade_to_identity(self):
        """The fallback ladder's last rung: no measurements at all."""
        from repro.clocks.sync import NodeSyncRecord

        data = SyncData(master_node=NodeId(0, 0), local_masters={0: NodeId(0, 0)})
        node = NodeId(0, 1)
        data.records[node] = NodeSyncRecord(node=node, machine=0)
        for scheme in (
            FlatSingleOffset(strict=False),
            FlatInterpolation(strict=False),
            HierarchicalInterpolation(strict=False),
        ):
            converters = scheme.converters(data)
            assert converters[node].convert(42.0) == 42.0

    def test_non_strict_hierarchical_uses_partial_measurements(self, sync_fixture):
        """Dropping a remote machine's meta measurements must not destroy
        the *local* alignment the surviving measurements still provide."""
        import copy

        fx = sync_fixture
        data = copy.deepcopy(fx.data)
        remote_master = data.local_masters[1]
        rec = data.records[remote_master]
        rec.meta_start = rec.meta_end = None
        scheme = HierarchicalInterpolation(strict=False)
        converters = scheme.converters(data)
        # Every node still gets a converter and intra-metahost differences
        # on the damaged machine stay at internal-link precision.
        for node in fx.nodes[1]:
            assert node in converters
        synchronized = scheme.convert_all(data)
        t = 30.0
        a, b = fx.nodes[1][1], fx.nodes[1][2]
        local_a = fx.clocks.clock(a).local_time(t)
        local_b = fx.clocks.clock(b).local_time(t)
        est = synchronized.to_master(a, local_a) - synchronized.to_master(b, local_b)
        truth = true_master_time(
            fx.clocks, fx.master, a, local_a
        ) - true_master_time(fx.clocks, fx.master, b, local_b)
        assert abs(est - truth) * 1e6 < 50.0  # microseconds, internal scale

    def test_scheme_names_are_table2_rows(self):
        assert [s.name for s in SCHEMES] == [
            "single-flat-offset",
            "two-flat-offsets",
            "two-hierarchical-offsets",
        ]


class TestGlobalClockMachines:
    def test_global_clock_machine_skips_slave_step(self):
        """Metahosts with hardware sync use the local master's converter."""
        master = NodeId(0, 0)
        data = SyncData(
            master_node=master,
            local_masters={0: master, 1: NodeId(1, 0)},
            global_clock_machines=frozenset({1}),
        )
        from repro.clocks.sync import NodeSyncRecord

        data.records[master] = NodeSyncRecord(node=master, machine=0)
        lm = NodeSyncRecord(
            node=NodeId(1, 0),
            machine=1,
            meta_start=_measurement(NodeId(1, 0), master, 1e-3, 0.0),
            meta_end=_measurement(NodeId(1, 0), master, 1e-3, 100.0),
        )
        data.records[NodeId(1, 0)] = lm
        # Slave on machine 1 with NO local measurements — allowed, because
        # the machine has a global clock.
        data.records[NodeId(1, 1)] = NodeSyncRecord(node=NodeId(1, 1), machine=1)
        converters = HierarchicalInterpolation().converters(data)
        assert converters[NodeId(1, 1)].convert(1.0) == pytest.approx(
            converters[NodeId(1, 0)].convert(1.0)
        )
