"""Rule-family fixtures for :mod:`repro.check` — positive and negative.

Every rule id gets at least one snippet that must trigger it and one
near-miss that must not: the near-misses are what keep the checker
useful (a linter that cries wolf gets baselined into silence).  Snippets
run through :func:`repro.check.engine.check_source`, the same pipeline
``repro check`` uses, with the ``rel_file`` path choosing the package
whose rules apply.
"""

from __future__ import annotations

import ast
import textwrap

from repro.check import check_source
from repro.check.api_drift import check_api_surface, check_deprecations
from repro.check.visitors import Module, import_table, resolve


def rules_of(source, rel_file):
    return [f.rule for f in check_source(textwrap.dedent(source), rel_file)]


def module_of(source, rel_file):
    src = textwrap.dedent(source)
    return Module(file=rel_file, tree=ast.parse(src), lines=src.splitlines())


class TestDET101Unseeded:
    def test_unseeded_default_rng_flagged(self):
        src = """
        import numpy as np
        rng = np.random.default_rng()
        """
        assert rules_of(src, "repro/sim/fx.py") == ["DET101"]

    def test_seeded_default_rng_clean(self):
        src = """
        import numpy as np
        def make(seed):
            return np.random.default_rng(seed)
        """
        assert rules_of(src, "repro/sim/fx.py") == []

    def test_legacy_global_distributions_flagged(self):
        src = """
        import numpy as np
        x = np.random.rand(3)
        """
        assert rules_of(src, "repro/analysis/fx.py") == ["DET101"]

    def test_stdlib_random_flagged_even_outside_result_packages(self):
        src = """
        import random
        jitter = random.random()
        """
        assert rules_of(src, "repro/service/fx.py") == ["DET101"]

    def test_import_alias_resolution(self):
        # The rule matches meaning, not spelling.
        src = """
        from numpy.random import default_rng as make_rng
        rng = make_rng()
        """
        assert rules_of(src, "repro/sim/fx.py") == ["DET101"]


class TestDET102ClocksInResultPackages:
    def test_time_time_flagged(self):
        src = """
        import time
        stamp = time.time()
        """
        assert rules_of(src, "repro/analysis/fx.py") == ["DET102"]

    def test_monotonic_flagged_too(self):
        # Result packages may not read ANY clock, interval or wall.
        src = """
        import time
        t0 = time.monotonic()
        """
        assert rules_of(src, "repro/trace/fx.py") == ["DET102"]

    def test_wallclock_helper_also_banned_in_result_packages(self):
        src = """
        from repro.wallclock import wallclock
        now = wallclock()
        """
        assert rules_of(src, "repro/report/fx.py") == ["DET102"]

    def test_datetime_now_flagged(self):
        src = """
        import datetime
        when = datetime.datetime.now()
        """
        assert rules_of(src, "repro/sim/fx.py") == ["DET102"]


class TestDET103WallclockRouting:
    def test_direct_wall_clock_in_service_flagged(self):
        src = """
        import time
        started = time.time()
        """
        assert rules_of(src, "repro/service/fx.py") == ["DET103"]

    def test_monotonic_in_service_clean(self):
        # Interval measurement is not wall-clock.
        src = """
        import time
        t0 = time.monotonic()
        """
        assert rules_of(src, "repro/service/fx.py") == []

    def test_wallclock_helper_clean(self):
        src = """
        from repro.wallclock import wallclock
        started = wallclock()
        """
        assert rules_of(src, "repro/service/fx.py") == []

    def test_wallclock_module_itself_exempt(self):
        src = """
        import time
        def wallclock():
            return time.time()
        """
        assert rules_of(src, "repro/wallclock.py") == []


class TestDET104OrderUnstableIteration:
    def test_set_literal_iteration_flagged(self):
        src = """
        def f(xs):
            for x in {repr(v) for v in xs}:
                yield x
        """
        assert rules_of(src, "repro/report/fx.py") == ["DET104"]

    def test_set_union_iteration_flagged(self):
        src = """
        def f(a, b):
            for key in set(a) | set(b):
                yield key
        """
        assert rules_of(src, "repro/report/fx.py") == ["DET104"]

    def test_sorted_wrapper_clean(self):
        src = """
        def f(a, b):
            for key in sorted(set(a) | set(b)):
                yield key
        """
        assert rules_of(src, "repro/report/fx.py") == []

    def test_set_bound_name_tracked(self):
        src = """
        def f(xs):
            pending = set(xs)
            for x in pending:
                yield x
        """
        assert rules_of(src, "repro/analysis/fx.py") == ["DET104"]

    def test_listdir_iteration_flagged(self):
        src = """
        import os
        def f(path):
            return [n for n in os.listdir(path)]
        """
        assert rules_of(src, "repro/trace/fx.py") == ["DET104"]

    def test_outside_result_packages_clean(self):
        src = """
        def f(xs):
            for x in set(xs):
                yield x
        """
        assert rules_of(src, "repro/service/fx.py") == []


class TestATM2Atomicity:
    def test_bare_write_open_in_durable_package_flagged(self):
        src = """
        def save(path, data):
            with open(path, "w") as handle:
                handle.write(data)
        """
        assert rules_of(src, "repro/trace/fx.py") == ["ATM201"]

    def test_read_open_clean(self):
        src = """
        def load(path):
            with open(path, "r") as handle:
                return handle.read()
        """
        assert rules_of(src, "repro/trace/fx.py") == []

    def test_mode_keyword_matched(self):
        src = """
        def save(path, data):
            with open(path, mode="wb") as handle:
                handle.write(data)
        """
        assert rules_of(src, "repro/fs/fx.py") == ["ATM201"]

    def test_fdopen_atomic_idiom_clean(self):
        src = """
        import os
        import tempfile
        def save(path, data):
            fd, tmp = tempfile.mkstemp(dir=".")
            with os.fdopen(fd, "w") as handle:
                handle.write(data)
            os.replace(tmp, path)
        """
        assert rules_of(src, "repro/service/fx.py") == []

    def test_write_open_outside_durable_packages_clean(self):
        src = """
        def save(path, data):
            with open(path, "w") as handle:
                handle.write(data)
        """
        assert rules_of(src, "repro/report/fx.py") == []

    def test_os_rename_flagged_everywhere(self):
        src = """
        import os
        def move(a, b):
            os.rename(a, b)
        """
        assert rules_of(src, "repro/report/fx.py") == ["ATM202"]


class TestCON301LockOrder:
    def test_opposite_nesting_is_a_cycle(self):
        src = """
        import threading
        A = threading.Lock()
        B = threading.Lock()
        def f():
            with A:
                with B:
                    pass
        def g():
            with B:
                with A:
                    pass
        """
        assert rules_of(src, "repro/service/fx.py") == ["CON301"]

    def test_consistent_nesting_clean(self):
        src = """
        import threading
        A = threading.Lock()
        B = threading.Lock()
        def f():
            with A:
                with B:
                    pass
        def g():
            with A:
                with B:
                    pass
        """
        assert rules_of(src, "repro/service/fx.py") == []

    def test_condition_aliases_its_wrapped_lock(self):
        # Condition(self._lock) is the same resource as self._lock —
        # nesting them must not read as a two-lock edge.
        src = """
        import threading
        class S:
            def __init__(self):
                self._lock = threading.RLock()
                self._cv = threading.Condition(self._lock)
            def kick(self):
                with self._lock:
                    with self._cv:
                        self._cv.wait(0.1)
        """
        assert rules_of(src, "repro/service/fx.py") == []

    def test_acquire_release_pairs_tracked(self):
        src = """
        import threading
        A = threading.Lock()
        B = threading.Lock()
        def f():
            A.acquire()
            with B:
                pass
            A.release()
        def g():
            with B:
                A.acquire()
                A.release()
        """
        assert rules_of(src, "repro/service/fx.py") == ["CON301"]


class TestCON302BlockingUnderLock:
    def test_untimed_get_under_lock_flagged(self):
        src = """
        import queue
        import threading
        lock = threading.Lock()
        q = queue.Queue()
        def f():
            with lock:
                return q.get()
        """
        assert rules_of(src, "repro/service/fx.py") == ["CON302"]

    def test_timed_get_under_lock_clean(self):
        src = """
        import queue
        import threading
        lock = threading.Lock()
        q = queue.Queue()
        def f():
            with lock:
                return q.get(timeout=1.0)
        """
        assert rules_of(src, "repro/service/fx.py") == []

    def test_nested_def_not_under_outer_lock(self):
        # A function *defined* under a with-block does not run there.
        src = """
        import threading
        lock = threading.Lock()
        def f(q):
            with lock:
                def later():
                    return q.get()
                return later
        """
        assert rules_of(src, "repro/service/fx.py") == ["CON303"]


class TestCON303UntimedBlocking:
    def test_untimed_recv_flagged(self):
        src = """
        def pump(conn):
            return conn.recv()
        """
        assert rules_of(src, "repro/resilience/fx.py") == ["CON303"]

    def test_timed_wait_clean(self):
        src = """
        import threading
        stop = threading.Event()
        def loop():
            while not stop.is_set():
                stop.wait(timeout=0.5)
        """
        assert rules_of(src, "repro/service/fx.py") == []

    def test_outside_concurrency_packages_not_checked(self):
        src = """
        def pump(conn):
            return conn.recv()
        """
        assert rules_of(src, "repro/report/fx.py") == []


class TestCON304ThreadDaemonStory:
    def test_thread_without_daemon_flagged(self):
        src = """
        import threading
        def start(fn):
            t = threading.Thread(target=fn)
            t.start()
            return t
        """
        assert rules_of(src, "repro/service/fx.py") == ["CON304"]

    def test_thread_with_daemon_clean(self):
        src = """
        import threading
        def start(fn):
            t = threading.Thread(target=fn, daemon=True)
            t.start()
            return t
        """
        assert rules_of(src, "repro/service/fx.py") == []


class TestAPI401Surface:
    SNAPSHOT = {"api_all": ["alpha", "beta"]}

    def test_matching_all_clean(self):
        module = module_of('__all__ = ["alpha", "beta"]', "repro/api.py")
        assert check_api_surface([module], self.SNAPSHOT) == []

    def test_missing_name_flagged(self):
        module = module_of('__all__ = ["alpha"]', "repro/api.py")
        findings = check_api_surface([module], self.SNAPSHOT)
        assert [f.rule for f in findings] == ["API401"]
        assert "beta" in findings[0].message

    def test_unregistered_name_flagged(self):
        module = module_of(
            '__all__ = ["alpha", "beta", "gamma"]', "repro/api.py"
        )
        findings = check_api_surface([module], self.SNAPSHOT)
        assert [f.rule for f in findings] == ["API401"]
        assert "gamma" in findings[0].message

    def test_absent_api_module_skipped(self):
        module = module_of("x = 1", "repro/sim/fx.py")
        assert check_api_surface([module], self.SNAPSHOT) == []


class TestAPI402Deprecations:
    SHIM = """
    import warnings
    def old(x):
        warnings.warn("old is deprecated", DeprecationWarning, stacklevel=2)
        return x
    """

    def entry(self, remove_by):
        return {
            "file": "repro/analysis/fx.py",
            "symbol": "old",
            "added_in": "1.0.0",
            "remove_by": remove_by,
            "reason": "test",
        }

    def test_registered_inside_window_clean(self):
        module = module_of(self.SHIM, "repro/analysis/fx.py")
        snapshot = {"deprecations": [self.entry("1.1.0")]}
        assert check_deprecations([module], snapshot, "1.0.0") == []

    def test_unregistered_shim_flagged(self):
        module = module_of(self.SHIM, "repro/analysis/fx.py")
        findings = check_deprecations([module], {"deprecations": []}, "1.0.0")
        assert [f.rule for f in findings] == ["API402"]
        assert "not registered" in findings[0].message

    def test_expired_window_flagged(self):
        module = module_of(self.SHIM, "repro/analysis/fx.py")
        snapshot = {"deprecations": [self.entry("1.0.0")]}
        findings = check_deprecations([module], snapshot, "1.0.0")
        assert [f.rule for f in findings] == ["API402"]
        assert "expired" in findings[0].message

    def test_stale_registry_entry_flagged(self):
        module = module_of("x = 1", "repro/analysis/fx.py")
        snapshot = {"deprecations": [self.entry("1.1.0")]}
        findings = check_deprecations([module], snapshot, "1.0.0")
        assert [f.rule for f in findings] == ["API402"]
        assert "stale" in findings[0].message


class TestImportResolution:
    def test_aliases_resolve_to_canonical_names(self):
        tree = ast.parse(
            "import numpy as np\n"
            "from time import time as now\n"
            "from repro.wallclock import wallclock\n"
        )
        imports = import_table(tree)
        call = ast.parse("np.random.default_rng").body[0].value
        assert resolve(call, imports) == "numpy.random.default_rng"
        name = ast.parse("now").body[0].value
        assert resolve(name, imports) == "time.time"
        name = ast.parse("wallclock").body[0].value
        assert resolve(name, imports) == "repro.wallclock.wallclock"
