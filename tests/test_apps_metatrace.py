"""Tests for the MetaTrace workload configuration and structure."""

import pytest

from repro.apps.metatrace import MetaTraceConfig, make_metatrace_app
from repro.apps.metatrace.config import (
    COUPLED_COMM,
    PARTRACE_COMM,
    TRACE_COMM,
)
from repro.errors import ConfigurationError
from repro.sim.runtime import MetaMPIRuntime
from repro.topology.metacomputer import Placement
from repro.topology.presets import single_cluster


def _config(**kwargs):
    defaults = dict(
        trace_ranks=tuple(range(4, 8)),
        partrace_ranks=tuple(range(4)),
        dims=(4, 1, 1),
        coupling_intervals=2,
        cg_iterations=3,
        cg_work_s=0.005,
        finelassdt_work_s=0.005,
        partrace_work_s=0.01,
        velocity_field_bytes=4 * 1024 * 1024,
    )
    defaults.update(kwargs)
    return MetaTraceConfig(**defaults)


class TestConfig:
    def test_equal_counts_required(self):
        with pytest.raises(ConfigurationError):
            _config(partrace_ranks=(0, 1))

    def test_disjoint_ranks_required(self):
        with pytest.raises(ConfigurationError):
            _config(partrace_ranks=(4, 5, 6, 7))

    def test_grid_must_cover_trace_ranks(self):
        with pytest.raises(ConfigurationError):
            _config(dims=(2, 1, 1))

    def test_partner_mapping_is_index_aligned(self):
        config = _config()
        assert config.partner_of_trace(0) == 0
        assert config.partner_of_trace(3) == 3
        assert config.partner_of_partrace(2) == 6

    def test_velocity_chunk_split(self):
        config = _config()
        assert config.velocity_chunk_bytes == 1024 * 1024

    def test_subcomms_cover_everything(self):
        config = _config()
        subs = config.subcomms()
        assert set(subs) == {TRACE_COMM, PARTRACE_COMM, COUPLED_COMM}
        assert sorted(subs[COUPLED_COMM]) == list(range(8))

    def test_jitter_bounds(self):
        with pytest.raises(ConfigurationError):
            _config(work_jitter=1.0)


class TestExecution:
    @pytest.fixture(scope="class")
    def run(self):
        mc = single_cluster(node_count=4, cpus_per_node=2)
        placement = Placement.block(mc, 8)
        config = _config()
        runtime = MetaMPIRuntime(
            mc, placement, seed=2, subcomms=config.subcomms()
        )
        return runtime.run(make_metatrace_app(config)), config

    def test_completes(self, run):
        result, _config_ = run
        assert result.stats.finish_time > 0

    def test_velocity_transfers_counted(self, run):
        result, config = run
        # Per interval: 4 velocity chunks + 4 steering messages, plus halos.
        minimum = config.coupling_intervals * len(config.trace_ranks) * 2
        assert result.stats.p2p_messages >= minimum

    def test_velocity_chunks_use_rendezvous(self, run):
        result, _ = run
        assert result.stats.rendezvous_messages >= 8  # 4 pairs × 2 intervals

    def test_expected_regions_traced(self, run):
        result, _ = run
        names = result.definitions.regions.names()
        for expected in (
            "printtolink",
            "finelassdt",
            "cgiteration",
            "getsteering",
            "ReadVelFieldFromTrace",
            "trackparticles",
            "sendsteering",
        ):
            assert expected in names

    def test_collectives_per_interval(self, run):
        result, config = run
        # 1 coupled barrier + cg_iterations × 2 allreduces per interval.
        expected = config.coupling_intervals * (1 + config.cg_iterations * 2)
        assert result.stats.collectives == expected
