"""Tests for collective wait-state patterns (synthetic instances)."""

import pytest

from repro.analysis.instances import CollRecord, MPIOpInstance
from repro.analysis.matching import CollectiveInstance
from repro.analysis.patterns.collective import (
    BarrierCompletionPattern,
    EarlyReducePattern,
    GridWaitAtBarrierPattern,
    GridWaitAtNxNPattern,
    LateBroadcastPattern,
    WaitAtBarrierPattern,
    WaitAtNxNPattern,
    default_collective_patterns,
)
from repro.ids import Location


def _instance(op_name, enters, exits=None, root=0, machines=None):
    """Build a collective instance from per-rank enter (and exit) times."""
    instance = CollectiveInstance(
        comm=0, index=0, region=5, op_name=op_name, root=root
    )
    for rank, enter in enters.items():
        exit_t = (exits or {}).get(rank, max(enters.values()) + 0.01)
        op = MPIOpInstance(
            rank=rank, region=5, op_name=op_name, cpid=100 + rank,
            enter=enter, exit=exit_t,
        )
        record = CollRecord(exit_t, 5, 0, root, 0, 0)
        instance.members[rank] = (op, record)
        machine = 0 if machines is None else machines[rank]
        instance.locations[rank] = Location(machine, 0, rank)
    return instance


class TestWaitAtNxN:
    def test_each_rank_waits_for_last(self):
        instance = _instance("MPI_Allreduce", {0: 0.0, 1: 2.0, 2: 1.0})
        hits = {h.rank: h.value for h in WaitAtNxNPattern().contributions(instance)}
        assert hits[0] == pytest.approx(2.0)
        assert hits[2] == pytest.approx(1.0)
        assert 1 not in hits  # the last arriver does not wait

    def test_ignores_other_ops(self):
        instance = _instance("MPI_Barrier", {0: 0.0, 1: 2.0})
        assert WaitAtNxNPattern().contributions(instance) == []

    def test_grid_variant_needs_spanning_comm(self):
        same = _instance("MPI_Allreduce", {0: 0.0, 1: 2.0})
        cross = _instance("MPI_Allreduce", {0: 0.0, 1: 2.0}, machines={0: 0, 1: 1})
        assert GridWaitAtNxNPattern().contributions(same) == []
        assert GridWaitAtNxNPattern().contributions(cross)

    def test_wait_clipped_by_own_exit(self):
        # A rank that exits before the last enter (inconsistent stamps)
        # cannot be charged more than its own duration.
        instance = _instance(
            "MPI_Allreduce", {0: 0.0, 1: 5.0}, exits={0: 1.0, 1: 5.1}
        )
        hits = {h.rank: h.value for h in WaitAtNxNPattern().contributions(instance)}
        assert hits[0] == pytest.approx(1.0)


class TestWaitAtBarrier:
    def test_barrier_waits(self):
        instance = _instance("MPI_Barrier", {0: 0.0, 1: 3.0, 2: 2.5})
        hits = {h.rank: h.value for h in WaitAtBarrierPattern().contributions(instance)}
        assert hits[0] == pytest.approx(3.0)
        assert hits[2] == pytest.approx(0.5)

    def test_grid_variant(self):
        cross = _instance("MPI_Barrier", {0: 0.0, 1: 3.0}, machines={0: 0, 1: 1})
        hits = GridWaitAtBarrierPattern().contributions(cross)
        assert hits and hits[0].value == pytest.approx(3.0)

    def test_severity_located_at_waiting_callpath(self):
        instance = _instance("MPI_Barrier", {0: 0.0, 1: 3.0})
        hits = WaitAtBarrierPattern().contributions(instance)
        assert hits[0].cpid == 100  # rank 0's barrier call path


class TestBarrierCompletion:
    def test_completion_after_last_arrival(self):
        instance = _instance(
            "MPI_Barrier", {0: 0.0, 1: 2.0}, exits={0: 2.5, 1: 2.5}
        )
        hits = {h.rank: h.value for h in BarrierCompletionPattern().contributions(instance)}
        assert hits[0] == pytest.approx(0.5)
        assert hits[1] == pytest.approx(0.5)


class TestRootedPatterns:
    def test_early_reduce_charges_root(self):
        instance = _instance(
            "MPI_Reduce", {0: 0.0, 1: 4.0, 2: 1.0}, root=0
        )
        hits = EarlyReducePattern().contributions(instance)
        assert len(hits) == 1
        assert hits[0].rank == 0
        assert hits[0].value == pytest.approx(4.0)

    def test_early_reduce_late_root_no_wait(self):
        instance = _instance("MPI_Reduce", {0: 9.0, 1: 0.0, 2: 1.0}, root=0)
        assert EarlyReducePattern().contributions(instance) == []

    def test_late_broadcast_charges_nonroots(self):
        instance = _instance("MPI_Bcast", {0: 5.0, 1: 0.0, 2: 2.0}, root=0)
        hits = {h.rank: h.value for h in LateBroadcastPattern().contributions(instance)}
        assert hits[1] == pytest.approx(5.0)
        assert hits[2] == pytest.approx(3.0)
        assert 0 not in hits

    def test_late_broadcast_early_root_no_wait(self):
        instance = _instance("MPI_Bcast", {0: 0.0, 1: 1.0}, root=0)
        assert LateBroadcastPattern().contributions(instance) == []

    def test_scatter_and_gather_covered(self):
        scatter = _instance("MPI_Scatter", {0: 5.0, 1: 0.0}, root=0)
        assert LateBroadcastPattern().contributions(scatter)
        gather = _instance("MPI_Gather", {0: 0.0, 1: 5.0}, root=0)
        assert EarlyReducePattern().contributions(gather)


class TestCatalogue:
    def test_default_catalogue_names_unique(self):
        names = [p.name for p in default_collective_patterns()]
        assert len(names) == len(set(names))


class TestNxNCompletion:
    def test_partitions_duration_with_wait(self):
        from repro.analysis.patterns.collective import NxNCompletionPattern

        instance = _instance(
            "MPI_Allreduce", {0: 0.0, 1: 2.0}, exits={0: 2.5, 1: 2.5}
        )
        waits = {h.rank: h.value for h in WaitAtNxNPattern().contributions(instance)}
        completions = {
            h.rank: h.value for h in NxNCompletionPattern().contributions(instance)
        }
        # For rank 0: 2.0 s waiting + 0.5 s completion = full 2.5 s duration.
        assert waits[0] + completions[0] == pytest.approx(2.5)
        assert completions[1] == pytest.approx(0.5)

    def test_ignores_barriers(self):
        from repro.analysis.patterns.collective import NxNCompletionPattern

        instance = _instance("MPI_Barrier", {0: 0.0, 1: 2.0})
        assert NxNCompletionPattern().contributions(instance) == []
