"""Baseline semantics: suppression, staleness, and the shipped file."""

from __future__ import annotations

import json
import textwrap

import pytest

from repro.check import Baseline, BaselineError, check_source, run_checks
from repro.check.engine import DEFAULT_BASELINE_PATH

VIOLATION = textwrap.dedent(
    """
    import numpy as np
    rng = np.random.default_rng()
    """
)


def finding():
    (result,) = check_source(VIOLATION, "repro/sim/fx.py")
    return result


def entry_for(f, reason="accepted for the test"):
    return {
        "rule": f.rule,
        "file": f.file,
        "symbol": f.symbol,
        "snippet": f.snippet,
        "reason": reason,
    }


class TestBaselineMatching:
    def test_matching_entry_suppresses(self):
        f = finding()
        baseline = Baseline(entries=[entry_for(f)])
        active, suppressed = baseline.apply([f])
        assert active == []
        assert suppressed == [f]

    def test_match_survives_line_moves(self):
        # The identity is (rule, file, symbol, snippet) — no line number:
        # edits *above* a baselined site must not invalidate it.
        f = finding()
        baseline = Baseline(entries=[entry_for(f)])
        moved = check_source(
            "# a new comment line\n# and another\n" + VIOLATION,
            "repro/sim/fx.py",
        )
        active, suppressed = baseline.apply(moved)
        assert active == []
        assert len(suppressed) == 1
        assert suppressed[0].line != f.line

    def test_edited_line_breaks_the_match(self):
        f = finding()
        baseline = Baseline(entries=[entry_for(f)])
        edited = check_source(
            VIOLATION.replace("rng =", "generator ="), "repro/sim/fx.py"
        )
        active, _ = baseline.apply(edited)
        # The new finding escapes the baseline AND the old entry is stale.
        assert sorted(x.rule for x in active) == ["BASE001", "DET101"]

    def test_stale_entry_is_base001(self):
        baseline = Baseline(entries=[entry_for(finding())])
        active, suppressed = baseline.apply([])
        assert [x.rule for x in active] == ["BASE001"]
        assert suppressed == []

    def test_missing_reason_is_base002(self):
        f = finding()
        baseline = Baseline(entries=[entry_for(f, reason="  ")])
        active, suppressed = baseline.apply([f])
        assert [x.rule for x in active] == ["BASE002"]
        assert suppressed == [f]

    def test_malformed_baseline_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(BaselineError):
            Baseline.load(str(path))
        path.write_text('["wrong shape"]')
        with pytest.raises(BaselineError):
            Baseline.load(str(path))

    def test_missing_file_is_empty_baseline(self, tmp_path):
        baseline = Baseline.load(str(tmp_path / "absent.json"))
        assert baseline.entries == []

    def test_update_carries_reasons_forward(self):
        f = finding()
        previous = Baseline(entries=[entry_for(f, reason="kept on purpose")])
        fresh = Baseline.from_findings([f])
        fresh.merge_reasons(previous)
        assert fresh.entries[0]["reason"] == "kept on purpose"


class TestShippedBaseline:
    def test_tree_is_clean_under_shipped_baseline(self):
        # The acceptance gate: `repro check` over the real sources with
        # the checked-in baseline reports nothing.  A failure here means
        # either a new violation or a stale/reason-less baseline entry.
        report = run_checks()
        assert report.to_text().splitlines()[:1] and report.ok, (
            report.to_text()
        )

    def test_every_shipped_entry_has_a_reason(self):
        with open(DEFAULT_BASELINE_PATH, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        for entry in payload["entries"]:
            assert entry.get("reason", "").strip(), entry

    def test_runs_are_deterministic(self):
        first = run_checks()
        second = run_checks()
        assert first.to_json() == second.to_json()
