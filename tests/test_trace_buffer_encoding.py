"""Tests for trace buffers and the binary encoding."""

import pytest

from repro.errors import EncodingError, TraceError
from repro.trace.buffer import TraceBuffer
from repro.trace.encoding import FORMAT_VERSION, MAGIC, decode_events, encode_events
from repro.trace.events import (
    CollExitEvent,
    EnterEvent,
    ExitEvent,
    RecvEvent,
    SendEvent,
)


class TestBuffer:
    def test_collects_events_in_order(self):
        buf = TraceBuffer(0)
        buf.enter(0.0, 1)
        buf.send(0.5, 2, 3, 0, 100)
        buf.exit(1.0, 1)
        buf.finalize()
        assert [type(e).__name__ for e in buf] == [
            "EnterEvent",
            "SendEvent",
            "ExitEvent",
        ]

    def test_rejects_time_reversal(self):
        buf = TraceBuffer(0)
        buf.enter(1.0, 1)
        with pytest.raises(TraceError, match="non-monotonic"):
            buf.exit(0.5, 1)

    def test_equal_stamps_allowed(self):
        buf = TraceBuffer(0)
        buf.enter(1.0, 1)
        buf.exit(1.0, 1)
        buf.finalize()

    def test_exit_without_enter_rejected(self):
        buf = TraceBuffer(0)
        with pytest.raises(TraceError):
            buf.exit(0.0, 1)

    def test_finalize_checks_balance(self):
        buf = TraceBuffer(3)
        buf.enter(0.0, 1)
        with pytest.raises(TraceError, match="unclosed"):
            buf.finalize()

    def test_append_after_finalize_rejected(self):
        buf = TraceBuffer(0)
        buf.finalize()
        with pytest.raises(TraceError):
            buf.enter(0.0, 1)


SAMPLE_EVENTS = [
    EnterEvent(0.0, 0),
    EnterEvent(0.25, 1),
    SendEvent(0.5, 3, 7, 0, 4096),
    RecvEvent(0.75, 2, -1, 1, 123456789),
    ExitEvent(1.0, 1),
    CollExitEvent(1.5, 2, 0, 3, 1024, 2048),
    ExitEvent(2.0, 0),
]


class TestEncoding:
    def test_round_trip(self):
        blob = encode_events(7, SAMPLE_EVENTS)
        rank, events = decode_events(blob)
        assert rank == 7
        assert events == SAMPLE_EVENTS

    def test_empty_trace_round_trip(self):
        rank, events = decode_events(encode_events(0, []))
        assert rank == 0
        assert events == []

    def test_header_magic(self):
        blob = encode_events(1, [])
        assert blob.startswith(MAGIC)

    def test_bad_magic_rejected(self):
        blob = b"XXXX" + encode_events(0, [])[4:]
        with pytest.raises(EncodingError, match="magic"):
            decode_events(blob)

    def test_bad_version_rejected(self):
        import struct

        blob = struct.pack("<4sHI", MAGIC, FORMAT_VERSION + 1, 0)
        with pytest.raises(EncodingError, match="version"):
            decode_events(blob)

    def test_truncated_header_rejected(self):
        with pytest.raises(EncodingError):
            decode_events(b"RP")

    def test_truncated_record_rejected(self):
        blob = encode_events(0, SAMPLE_EVENTS)
        with pytest.raises(EncodingError, match="truncated"):
            decode_events(blob[:-3])

    def test_unknown_kind_rejected(self):
        blob = encode_events(0, []) + bytes([99]) + b"\x00" * 12
        with pytest.raises(EncodingError, match="unknown record kind"):
            decode_events(blob)

    def test_timestamps_preserved_exactly(self):
        events = [EnterEvent(0.1234567890123456, 0), ExitEvent(1e-9, 0)]
        # Note: buffer monotonicity is not enforced by the codec itself.
        _, decoded = decode_events(encode_events(0, events))
        assert decoded[0].time == events[0].time
        assert decoded[1].time == events[1].time

    def test_large_sizes_survive(self):
        events = [SendEvent(0.0, 1, 0, 0, 200 * 1024 * 1024)]
        _, decoded = decode_events(encode_events(0, events))
        assert decoded[0].size == 200 * 1024 * 1024
