"""AnalysisService semantics: dedup, admission control, recovery, queries.

Timing-sensitive behaviours (queue-full, duplicate-while-queued) use a
gated stand-in for ``execute_job`` so the executor blocks deterministically;
end-to-end correctness of the real runners is covered by
``test_service_http.py`` and ``test_service_recovery.py``.
"""

from __future__ import annotations

import threading
import time

import pytest

import repro.service.app as app_module
from repro.errors import JobRejected, JobValidationError, ServiceError
from repro.service import ServiceConfig, create_app
from repro.service.store import ACCEPTED, DONE, FAILED, JobRecord, JobStore


def _wait(predicate, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.02)
    return False


def _wait_settled(service, key, timeout=60.0):
    assert _wait(
        lambda: service.job(key).status in (DONE, FAILED), timeout=timeout
    ), f"job {key} never settled: {service.job(key).status}"
    return service.job(key)


class _Gate:
    """Controllable execute_job replacement: blocks until released."""

    def __init__(self):
        self.release = threading.Event()
        self.started = threading.Event()
        self.calls = 0

    def __call__(self, spec, *, pool=None, progress=None, deadline=None):
        self.calls += 1
        self.started.set()
        if not self.release.wait(timeout=60):
            raise RuntimeError("gate never released")
        return {"kind": spec["kind"], "echo": spec["seed"]}, None


@pytest.fixture
def config(tmp_path):
    return ServiceConfig(
        store_path=str(tmp_path / "jobs.jsonl"),
        queue_limit=2,
        pool_workers=1,
        default_jobs=1,
        drain_grace_s=5.0,
    )


SIM = {"kind": "simulate", "experiment": "imbalance"}


class TestSubmission:
    def test_submit_runs_to_done(self, config):
        with create_app(config) as service:
            record, disposition = service.submit({**SIM, "seed": 1})
            assert disposition == "created"
            assert record.status == ACCEPTED
            final = _wait_settled(service, record.key)
            assert final.status == DONE
            assert final.result["integrity_ok"] is True
            assert final.attempts == 1
            assert service.stats()["executed"] == 1

    def test_invalid_spec_rejected_without_side_effects(self, config):
        with create_app(config) as service:
            with pytest.raises(JobValidationError):
                service.submit({"kind": "nope", "experiment": "x"})
            assert service.jobs() == []

    def test_submit_before_startup_rejected(self, config):
        service = create_app(config)
        with pytest.raises(JobRejected):
            service.submit({**SIM, "seed": 1})

    def test_submit_while_draining_rejected(self, config):
        service = create_app(config).startup()
        service.shutdown()
        with pytest.raises(JobRejected):
            service.submit({**SIM, "seed": 1})


class TestIdempotency:
    def test_duplicate_while_queued(self, config, monkeypatch):
        gate = _Gate()
        monkeypatch.setattr(app_module, "execute_job", gate)
        with create_app(config) as service:
            first, d1 = service.submit({**SIM, "seed": 1})
            second, d2 = service.submit({**SIM, "seed": 1})
            assert d1 == "created" and d2 == "duplicate"
            assert second.key == first.key
            assert len(service.jobs()) == 1
            gate.release.set()
            _wait_settled(service, first.key)
            assert gate.calls == 1  # submitted twice, computed once

    def test_finished_job_served_from_cache(self, config, monkeypatch):
        gate = _Gate()
        gate.release.set()
        monkeypatch.setattr(app_module, "execute_job", gate)
        with create_app(config) as service:
            record, _ = service.submit({**SIM, "seed": 1})
            _wait_settled(service, record.key)
            calls_before = gate.calls
            again, disposition = service.submit({**SIM, "seed": 1})
            assert disposition == "cached"
            assert again.result == record.result
            time.sleep(0.2)  # would surface an accidental re-queue
            assert gate.calls == calls_before

    def test_failed_job_readmitted_on_resubmit(self, config, monkeypatch):
        def explode(spec, *, pool=None, progress=None, deadline=None):
            raise RuntimeError("boom")

        monkeypatch.setattr(app_module, "execute_job", explode)
        with create_app(config) as service:
            record, _ = service.submit({**SIM, "seed": 1})
            final = _wait_settled(service, record.key)
            assert final.status == FAILED
            assert "boom" in final.error
            healthy = _Gate()
            healthy.release.set()
            monkeypatch.setattr(app_module, "execute_job", healthy)
            again, disposition = service.submit({**SIM, "seed": 1})
            assert disposition == "retried"
            final = _wait_settled(service, again.key)
            assert final.status == DONE
            assert final.error is None


class TestAdmissionControl:
    def test_queue_full_rejected_with_backpressure(self, config, monkeypatch):
        gate = _Gate()
        monkeypatch.setattr(app_module, "execute_job", gate)
        with create_app(config) as service:
            service.submit({**SIM, "seed": 1})
            gate.started.wait(timeout=10)  # seed 1 now in flight, not queued
            service.submit({**SIM, "seed": 2})
            service.submit({**SIM, "seed": 3})  # queue now at its limit of 2
            with pytest.raises(JobRejected) as excinfo:
                service.submit({**SIM, "seed": 4})
            assert excinfo.value.retry_after_s > 0
            gate.release.set()


class TestRecovery:
    def test_journaled_jobs_finish_after_restart(self, config):
        # A dead service's store: one queued job, one that was mid-run.
        with JobStore(config.store_path) as store:
            from repro.service.store import canonical_spec, job_key

            for seq, (seed, status) in enumerate([(1, "accepted"), (2, "running")], 1):
                spec = canonical_spec({**SIM, "seed": seed}, default_jobs=1)
                store.save(
                    JobRecord(key=job_key(spec), seq=seq, spec=spec, status=status)
                )
        with create_app(config) as service:
            records = service.jobs()
            assert len(records) == 2
            for record in records:
                final = _wait_settled(service, record.key)
                assert final.status == DONE
                assert final.result["integrity_ok"] is True

    def test_crash_looping_job_quarantined(self, config):
        with JobStore(config.store_path) as store:
            from repro.service.store import canonical_spec, job_key

            spec = canonical_spec({**SIM, "seed": 1}, default_jobs=1)
            store.save(
                JobRecord(
                    key=job_key(spec), seq=1, spec=spec, status="running",
                    attempts=config.max_job_attempts,
                )
            )
        with create_app(config) as service:
            final = _wait_settled(service, service.jobs()[0].key)
            assert final.status == FAILED
            assert "gave up" in final.error


class TestSeverityQuery:
    def test_cube_queries(self, config):
        analyze = {
            "kind": "analyze",
            "experiment": "figure7",
            "seed": 3,
            "jobs": 1,
            "config": {"coupling_intervals": 2},
        }
        with create_app(config) as service:
            record, _ = service.submit(analyze)
            final = _wait_settled(service, record.key, timeout=120)
            assert final.status == DONE, final.error
            overview = service.severity(record.key)
            assert "late-sender" in overview["metrics"]
            assert overview["total_time"] > 0
            detail = service.severity(record.key, metric="late-sender")
            assert detail["total"] >= 0
            assert detail["by_rank"] and detail["by_callpath"]
            assert detail["total"] == pytest.approx(
                sum(detail["by_rank"].values())
            )
            with pytest.raises(ServiceError):
                service.severity(record.key, metric="no-such-metric")
            with pytest.raises(ServiceError):
                service.severity("missing-key")

    def test_simulate_jobs_have_no_cube(self, config):
        with create_app(config) as service:
            record, _ = service.submit({**SIM, "seed": 1})
            _wait_settled(service, record.key)
            with pytest.raises(ServiceError):
                service.severity(record.key)
