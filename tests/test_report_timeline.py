"""Tests for the ASCII timeline renderer."""

import pytest

from repro.analysis.replay import analyze_run
from repro.apps.imbalance import make_barrier_imbalance_app, make_imbalance_app
from repro.errors import ReportError
from repro.report.timeline import (
    GLYPH_SYNC,
    render_result_timeline,
    render_timeline,
)
from repro.topology.presets import single_cluster

from tests.conftest import run_app


@pytest.fixture(scope="module")
def barrier_result():
    mc = single_cluster(node_count=4, cpus_per_node=1)
    work = {0: 0.1, 1: 0.01, 2: 0.01, 3: 0.01}
    return analyze_run(run_app(mc, 4, make_barrier_imbalance_app(work), seed=4))


class TestTimeline:
    def test_rows_cover_all_ranks(self, barrier_result):
        view = render_timeline(
            barrier_result.timelines,
            barrier_result.definitions.regions,
            barrier_result.callpaths,
            columns=40,
        )
        assert set(view.rows) == {0, 1, 2, 3}
        assert all(len(row) == 40 for row in view.rows.values())

    def test_fast_ranks_dominated_by_barrier(self, barrier_result):
        """Ranks 1-3 spend most cells in the barrier glyph (waiting)."""
        view = render_timeline(
            barrier_result.timelines,
            barrier_result.definitions.regions,
            barrier_result.callpaths,
            columns=50,
        )
        for rank in (1, 2, 3):
            barrier_cells = view.rows[rank].count(GLYPH_SYNC)
            assert barrier_cells > 35
        # The slow rank computes most of the time instead.
        assert view.rows[0].count(GLYPH_SYNC) < 10

    def test_user_region_in_legend(self, barrier_result):
        view = render_timeline(
            barrier_result.timelines,
            barrier_result.definitions.regions,
            barrier_result.callpaths,
        )
        assert "work" in view.legend.values()

    def test_window_selection(self, barrier_result):
        view = render_timeline(
            barrier_result.timelines,
            barrier_result.definitions.regions,
            barrier_result.callpaths,
            start=0.0,
            end=0.05,
            columns=20,
        )
        assert view.end == 0.05

    def test_rank_selection(self, barrier_result):
        view = render_timeline(
            barrier_result.timelines,
            barrier_result.definitions.regions,
            barrier_result.callpaths,
            ranks=[0, 2],
        )
        assert set(view.rows) == {0, 2}

    def test_render_string_form(self, barrier_result):
        text = render_result_timeline(barrier_result, columns=30)
        assert "rank   0" in text
        assert "legend" in text

    def test_errors(self, barrier_result):
        with pytest.raises(ReportError):
            render_timeline({}, barrier_result.definitions.regions, barrier_result.callpaths)
        with pytest.raises(ReportError):
            render_timeline(
                barrier_result.timelines,
                barrier_result.definitions.regions,
                barrier_result.callpaths,
                columns=2,
            )
        with pytest.raises(ReportError):
            render_timeline(
                barrier_result.timelines,
                barrier_result.definitions.regions,
                barrier_result.callpaths,
                ranks=[99],
            )
        with pytest.raises(ReportError):
            render_timeline(
                barrier_result.timelines,
                barrier_result.definitions.regions,
                barrier_result.callpaths,
                start=1.0,
                end=0.5,
            )

    def test_p2p_glyphs_present(self):
        mc = single_cluster(node_count=2, cpus_per_node=1)
        work = {0: 0.01, 1: 0.05}
        result = analyze_run(run_app(mc, 2, make_imbalance_app(work), seed=1))
        text = render_result_timeline(result, columns=40)
        assert "m" in text.split("\n")[1]  # sendrecv cells on rank 0
