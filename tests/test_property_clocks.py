"""Property-based tests for clocks, converters, and synchronization."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clocks.clock import LinearClock
from repro.clocks.measurement import OffsetMeasurement
from repro.clocks.sync import LinearConverter
from repro.ids import NodeId

finite_times = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
offsets = st.floats(min_value=-1.0, max_value=1.0, allow_nan=False)
drifts = st.floats(min_value=-1e-4, max_value=1e-4, allow_nan=False)


class TestClockProperties:
    @given(offset=offsets, drift=drifts, t=finite_times)
    def test_true_time_inverts_local_time(self, offset, drift, t):
        clock = LinearClock(offset_s=offset, drift=drift)
        assert math.isclose(clock.true_time(clock.local_time(t)), t, abs_tol=1e-6)

    @given(offset=offsets, drift=drifts, t1=finite_times, t2=finite_times)
    def test_clock_is_monotone(self, offset, drift, t1, t2):
        # Non-strict: time deltas below float resolution may collapse.
        clock = LinearClock(offset_s=offset, drift=drift)
        if t1 < t2:
            assert clock.local_time(t1) <= clock.local_time(t2)

    @given(
        o1=offsets, d1=drifts, o2=offsets, d2=drifts, t=finite_times
    )
    def test_offset_antisymmetry(self, o1, d1, o2, d2, t):
        a = LinearClock(o1, d1)
        b = LinearClock(o2, d2)
        assert math.isclose(
            a.offset_to(b, t), -b.offset_to(a, t), abs_tol=1e-9
        )


converters = st.builds(
    LinearConverter,
    slope=st.floats(min_value=0.5, max_value=2.0, allow_nan=False),
    intercept=st.floats(min_value=-10.0, max_value=10.0, allow_nan=False),
)


class TestConverterProperties:
    @given(inner=converters, outer=converters, t=finite_times)
    def test_composition_associates_with_application(self, inner, outer, t):
        assert math.isclose(
            inner.then(outer).convert(t),
            outer.convert(inner.convert(t)),
            rel_tol=1e-12,
            abs_tol=1e-9,
        )

    @given(c=converters, t=finite_times)
    def test_identity_is_neutral(self, c, t):
        ident = LinearConverter.identity()
        assert math.isclose(
            c.then(ident).convert(t), c.convert(t), rel_tol=1e-12, abs_tol=1e-9
        )
        assert math.isclose(
            ident.then(c).convert(t), c.convert(t), rel_tol=1e-12, abs_tol=1e-9
        )

    @given(
        master_drift=drifts,
        slave_offset=offsets,
        slave_drift=drifts,
        t_eval=st.floats(min_value=0.0, max_value=200.0, allow_nan=False),
    )
    @settings(max_examples=60)
    def test_interpolation_exact_for_any_linear_pair(
        self, master_drift, slave_offset, slave_drift, t_eval
    ):
        """Two perfect measurements of linear clocks give exact conversion,
        even extrapolated beyond the anchors."""
        master = LinearClock(0.0, master_drift)
        slave = LinearClock(slave_offset, slave_drift)
        node, ref = NodeId(0, 1), NodeId(0, 0)

        def perfect(t):
            return OffsetMeasurement(
                node=node,
                reference=ref,
                offset_s=slave.offset_to(master, t),
                reference_local_s=master.local_time(t),
                slave_local_s=slave.local_time(t),
                rtt_s=0.0,
                true_offset_s=slave.offset_to(master, t),
                true_time_s=t,
            )

        converter = LinearConverter.from_interpolation(perfect(0.0), perfect(100.0))
        local = slave.local_time(t_eval)
        assert math.isclose(
            converter.convert(local),
            master.local_time(t_eval),
            abs_tol=1e-6,
        )

    @given(c=converters, t1=finite_times, t2=finite_times)
    def test_positive_slope_preserves_order(self, c, t1, t2):
        # Non-strict: sub-resolution gaps may collapse in float arithmetic.
        if t1 < t2:
            assert c.convert(t1) <= c.convert(t2)
