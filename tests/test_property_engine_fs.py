"""Property-based tests for the event engine, FIFO clamp, file systems,
and the pair schedule."""

from hypothesis import given
from hypothesis import strategies as st

from repro.apps.clockbench import pair_schedule
from repro.fs.filesystem import SimFileSystem
from repro.sim.engine import Engine
from repro.sim.transfer import ChannelClock


class TestEngineProperties:
    @given(
        delays=st.lists(
            st.floats(min_value=0.0, max_value=1e3, allow_nan=False),
            min_size=1,
            max_size=50,
        )
    )
    def test_execution_order_is_time_sorted(self, delays):
        engine = Engine()
        fired = []
        for delay in delays:
            engine.schedule(delay, lambda d=delay: fired.append(d))
        engine.run()
        assert fired == sorted(delays)
        assert engine.now == max(delays)

    @given(
        delays=st.lists(
            st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
            min_size=1,
            max_size=30,
        ),
        cancel_mask=st.lists(st.booleans(), min_size=1, max_size=30),
    )
    def test_cancelled_never_fire(self, delays, cancel_mask):
        engine = Engine()
        fired = []
        handles = []
        for i, delay in enumerate(delays):
            handles.append(engine.schedule(delay, lambda i=i: fired.append(i)))
        cancelled = set()
        for i, (handle, cancel) in enumerate(zip(handles, cancel_mask)):
            if cancel:
                handle.cancel()
                cancelled.add(i)
        engine.run()
        assert cancelled.isdisjoint(fired)
        assert len(fired) == len(delays) - len(cancelled & set(range(len(delays))))


class TestChannelClockProperties:
    @given(
        arrivals=st.lists(
            st.floats(min_value=0.0, max_value=1e3, allow_nan=False), max_size=50
        )
    )
    def test_clamped_sequence_is_monotone_and_minimal(self, arrivals):
        clock = ChannelClock()
        out = [clock.clamp(("c",), a) for a in arrivals]
        # Monotone non-decreasing…
        assert all(b >= a for a, b in zip(out, out[1:]))
        # …never earlier than requested…
        assert all(o >= a for o, a in zip(out, arrivals))
        # …and equal to the running maximum (no extra delay).
        running = []
        high = float("-inf")
        for a in arrivals:
            high = max(high, a)
            running.append(high)
        assert out == running


class TestFileSystemProperties:
    names = st.text(
        alphabet=st.sampled_from("abcdefgh"), min_size=1, max_size=8
    )

    @given(st.dictionaries(names, st.binary(max_size=64), max_size=20))
    def test_write_read_consistency(self, files):
        fs = SimFileSystem("p")
        fs.create_dir("/d")
        for name, payload in files.items():
            fs.write_file(f"/d/{name}", payload)
        for name, payload in files.items():
            assert fs.read_file(f"/d/{name}") == payload
        assert fs.list_dir("/d") == sorted(files)
        assert fs.total_bytes == sum(len(v) for v in files.values())

    @given(st.lists(names, min_size=1, max_size=6, unique=True))
    def test_nested_dirs_all_exist(self, segments):
        fs = SimFileSystem("p")
        path = "/" + "/".join(segments)
        fs.create_dir(path)
        for i in range(1, len(segments) + 1):
            assert fs.is_dir("/" + "/".join(segments[:i]))


class TestPairScheduleProperties:
    @given(
        n=st.integers(min_value=2, max_value=24),
        round_index=st.integers(min_value=0, max_value=100),
    )
    def test_schedule_is_a_partial_matching(self, n, round_index):
        pairs = pair_schedule(n, round_index)
        seen = set()
        for i, j in pairs:
            assert 0 <= i < j < n
            assert i not in seen and j not in seen
            seen.add(i)
            seen.add(j)
        # At most one unmatched process per parity of n/round.
        assert len(seen) >= n - 2
