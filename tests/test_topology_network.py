"""Tests for link specs and the stochastic latency model."""

import numpy as np
import pytest

from repro.errors import TopologyError
from repro.topology.network import LatencyModel, LinkClass, LinkSpec, loopback_link


def _link(**kwargs):
    defaults = dict(latency_s=1e-4, jitter_s=1e-5, bandwidth_bps=1e9)
    defaults.update(kwargs)
    return LinkSpec(**defaults)


class TestLinkSpec:
    def test_base_latency_subtracts_jitter_mean(self):
        spec = _link(latency_s=1e-4, jitter_s=1e-5)
        assert spec.base_latency_s == pytest.approx(9e-5)

    def test_base_latency_never_negative(self):
        spec = _link(latency_s=1e-6, jitter_s=1e-5)
        assert spec.base_latency_s == 0.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"latency_s": -1.0},
            {"jitter_s": -1.0},
            {"bandwidth_bps": 0.0},
            {"congestion_prob": 1.5},
            {"congestion_scale_s": -1.0},
            {"congestion_block_s": 0.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(TopologyError):
            _link(**kwargs)

    def test_loopback_helper(self):
        lb = loopback_link()
        assert lb.link_class is LinkClass.LOOPBACK
        assert lb.latency_s < 1e-5


class TestLatencyModel:
    def test_deterministic_without_jitter(self, rng):
        model = LatencyModel(_link(jitter_s=0.0))
        assert model.sample_latency(rng) == pytest.approx(1e-4)

    def test_sample_mean_matches_spec(self, rng):
        model = LatencyModel(_link())
        samples = [model.sample_latency(rng) for _ in range(4000)]
        assert np.mean(samples) == pytest.approx(1e-4, rel=0.05)

    def test_samples_never_below_base(self, rng):
        model = LatencyModel(_link())
        assert all(
            model.sample_latency(rng) >= model.spec.base_latency_s
            for _ in range(500)
        )

    def test_transfer_time_includes_bandwidth_term(self, rng):
        model = LatencyModel(_link(jitter_s=0.0))
        small = model.transfer_time(0, rng)
        big = model.transfer_time(10**9, rng)
        assert big - small == pytest.approx(1.0)

    def test_transfer_rejects_negative_size(self, rng):
        with pytest.raises(TopologyError):
            LatencyModel(_link()).transfer_time(-1, rng)

    def test_mean_transfer_time_is_deterministic(self):
        model = LatencyModel(_link())
        assert model.mean_transfer_time(10**9) == pytest.approx(1.0 + 1e-4)


class TestCongestion:
    def _congested(self):
        return LatencyModel(
            _link(
                name="wan",
                congestion_prob=1.0,
                congestion_scale_s=50e-6,
                congestion_block_s=2.0,
            )
        )

    def test_zero_without_when_or_direction(self, rng):
        model = self._congested()
        assert model.congestion_bias(None, "a->b") == 0.0
        assert model.congestion_bias(1.0, None) == 0.0

    def test_bias_constant_within_block(self):
        model = self._congested()
        b1 = model.congestion_bias(0.1, "a->b")
        b2 = model.congestion_bias(1.9, "a->b")
        assert b1 == b2
        assert b1 > 0.0

    def test_bias_varies_across_blocks_and_directions(self):
        model = self._congested()
        biases = {model.congestion_bias(2.0 * k + 0.5, "a->b") for k in range(20)}
        assert len(biases) > 5  # independent episode draws
        assert model.congestion_bias(0.5, "a->b") != model.congestion_bias(0.5, "b->a")

    def test_bias_deterministic_across_model_instances(self):
        a = self._congested().congestion_bias(0.5, "x->y")
        b = self._congested().congestion_bias(0.5, "x->y")
        assert a == b

    def test_disabled_congestion_is_zero(self, rng):
        model = LatencyModel(_link())
        assert model.congestion_bias(0.5, "a->b") == 0.0

    def test_latency_includes_bias(self, rng):
        model = self._congested()
        bias = model.congestion_bias(0.5, "a->b")
        sample = model.sample_latency(rng, when=0.5, direction="a->b")
        assert sample >= model.spec.base_latency_s + bias


class TestBiasCacheBound:
    def _congested(self):
        return LatencyModel(
            _link(
                name="wan",
                congestion_prob=1.0,
                congestion_scale_s=50e-6,
                congestion_block_s=2.0,
            )
        )

    def test_cache_stays_one_entry_per_direction(self):
        # Regression: the cache used to key on (direction, block) and grew
        # with run length; long simulations leaked one entry per elapsed
        # time block.  Simulation time moves forward, so only the current
        # block per direction is live.
        model = self._congested()
        for k in range(1000):
            model.congestion_bias(2.0 * k + 0.5, "a->b")
            model.congestion_bias(2.0 * k + 0.5, "b->a")
        assert len(model._bias_cache) == 2

    def test_rederived_block_is_byte_identical(self):
        # Eviction is free of semantics: the bias is a pure function of
        # (link, direction, block), so re-querying an evicted block must
        # reproduce the exact value.
        model = self._congested()
        first = model.congestion_bias(0.5, "a->b")
        model.congestion_bias(1000.5, "a->b")  # evicts block 0
        assert model.congestion_bias(0.5, "a->b") == first


class TestMeanIncludesCongestion:
    def test_mean_folds_in_expected_congestion(self):
        # Regression: transfer_time always carried the congestion bias but
        # mean_transfer_time silently dropped it, skewing cost models on
        # congested links.
        spec_kwargs = dict(
            name="wan",
            congestion_prob=0.25,
            congestion_scale_s=80e-6,
            congestion_block_s=2.0,
        )
        congested = LatencyModel(_link(**spec_kwargs))
        clean = LatencyModel(_link())
        expected_extra = 0.25 * 80e-6
        assert congested.mean_transfer_time(10**9) == pytest.approx(
            clean.mean_transfer_time(10**9) + expected_extra
        )

    def test_mean_unchanged_without_congestion(self):
        model = LatencyModel(_link())
        assert model.mean_transfer_time(0) == pytest.approx(model.spec.latency_s)
