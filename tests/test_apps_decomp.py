"""Tests for Cartesian decompositions."""

import pytest

from repro.apps.decomp import CartesianDecomposition
from repro.apps.metatrace.config import interleaved_x_coords
from repro.errors import ConfigurationError


class TestBuild:
    def test_default_x_major_order(self):
        d = CartesianDecomposition.build((2, 2, 1))
        assert d.coord(0) == (0, 0, 0)
        assert d.coord(1) == (0, 1, 0)
        assert d.coord(2) == (1, 0, 0)
        assert d.size == 4

    def test_explicit_coords(self):
        coords = [(1, 0, 0), (0, 0, 0)]
        d = CartesianDecomposition.build((2, 1, 1), coords)
        assert d.coord(0) == (1, 0, 0)
        assert d.rank_at((0, 0, 0)) == 1

    def test_rejects_wrong_count(self):
        with pytest.raises(ConfigurationError):
            CartesianDecomposition.build((2, 2, 2), [(0, 0, 0)])

    def test_rejects_duplicates(self):
        with pytest.raises(ConfigurationError):
            CartesianDecomposition.build((2, 1, 1), [(0, 0, 0), (0, 0, 0)])

    def test_rejects_out_of_bounds(self):
        with pytest.raises(ConfigurationError):
            CartesianDecomposition.build((2, 1, 1), [(0, 0, 0), (5, 0, 0)])

    def test_rejects_nonpositive_dims(self):
        with pytest.raises(ConfigurationError):
            CartesianDecomposition.build((0, 1, 1), [])


class TestNeighbors:
    def test_interior_rank_has_six_neighbors(self):
        d = CartesianDecomposition.build((3, 3, 3))
        center = d.rank_at((1, 1, 1))
        assert len(d.neighbors(center)) == 6

    def test_corner_rank_has_three_neighbors(self):
        d = CartesianDecomposition.build((3, 3, 3))
        corner = d.rank_at((0, 0, 0))
        assert len(d.neighbors(corner)) == 3

    def test_neighborhood_is_symmetric(self):
        d = CartesianDecomposition.build((4, 2, 2))
        for rank in range(d.size):
            for _dim, _direction, other in d.neighbors(rank):
                back = [n for _, _, n in d.neighbors(other)]
                assert rank in back

    def test_neighbors_differ_by_one_step(self):
        d = CartesianDecomposition.build((4, 2, 2))
        for rank in range(d.size):
            mine = d.coord(rank)
            for dim, direction, other in d.neighbors(rank):
                theirs = d.coord(other)
                delta = [t - m for t, m in zip(theirs, mine)]
                assert delta[dim] == direction
                assert sum(abs(x) for x in delta) == 1

    def test_rank_bounds(self):
        d = CartesianDecomposition.build((2, 1, 1))
        with pytest.raises(ConfigurationError):
            d.coord(5)
        with pytest.raises(ConfigurationError):
            d.rank_at((9, 9, 9))


class TestInterleavedMapping:
    def test_first_block_on_even_planes(self):
        coords = interleaved_x_coords((4, 2, 2), 8)
        for i in range(8):
            assert coords[i][0] in (0, 2)
        for i in range(8, 16):
            assert coords[i][0] in (1, 3)

    def test_every_first_block_rank_has_second_block_x_neighbor(self):
        """The property that makes Experiment 1's Late Sender *grid*."""
        coords = interleaved_x_coords((4, 2, 2), 8)
        d = CartesianDecomposition.build((4, 2, 2), coords)
        for rank in range(8):  # FH-BRS block
            neighbor_blocks = {
                other >= 8
                for dim, _, other in d.neighbors(rank)
                if dim == 0
            }
            assert True in neighbor_blocks

    def test_rejects_odd_x(self):
        with pytest.raises(ConfigurationError):
            interleaved_x_coords((3, 2, 2), 6)

    def test_rejects_wrong_block_size(self):
        with pytest.raises(ConfigurationError):
            interleaved_x_coords((4, 2, 2), 6)
