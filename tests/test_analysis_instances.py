"""Tests for timeline construction from raw events."""

import pytest

from repro.analysis.callpath import CallPathRegistry
from repro.analysis.instances import build_timeline
from repro.clocks.sync import LinearConverter
from repro.errors import AnalysisError
from repro.ids import Location
from repro.trace.events import (
    CollExitEvent,
    EnterEvent,
    ExitEvent,
    RecvEvent,
    SendEvent,
)
from repro.trace.regions import RegionRegistry


@pytest.fixture
def regions():
    reg = RegionRegistry()
    for name in ("main", "solve", "MPI_Send", "MPI_Recv", "MPI_Barrier"):
        reg.register(name)
    return reg


def _build(events, regions, converter=None):
    return build_timeline(
        rank=0,
        location=Location(0, 0, 0),
        events=events,
        converter=converter or LinearConverter.identity(),
        callpaths=CallPathRegistry(),
        regions=regions,
    )


def _simple_trace(regions):
    main = regions.id_of("main")
    send = regions.id_of("MPI_Send")
    recv = regions.id_of("MPI_Recv")
    return [
        EnterEvent(0.0, main),
        EnterEvent(1.0, send),
        SendEvent(1.1, 1, 0, 0, 64),
        ExitEvent(2.0, send),
        EnterEvent(3.0, recv),
        RecvEvent(4.0, 1, 0, 0, 64),
        ExitEvent(4.0, recv),
        ExitEvent(5.0, main),
    ]


class TestTimeline:
    def test_mpi_instances_extracted(self, regions):
        timeline = _build(_simple_trace(regions), regions)
        assert [op.op_name for op in timeline.mpi_ops] == ["MPI_Send", "MPI_Recv"]
        send_op = timeline.mpi_ops[0]
        assert send_op.enter == 1.0 and send_op.exit == 2.0
        assert send_op.sends[0].dest == 1
        recv_op = timeline.mpi_ops[1]
        assert recv_op.recvs[0].source == 1

    def test_exclusive_time(self, regions):
        timeline = _build(_simple_trace(regions), regions)
        callpath_times = timeline.exclusive_time
        # main: 5s total − 1s send − 1s recv = 3s exclusive.
        assert sum(callpath_times.values()) == pytest.approx(5.0)
        assert max(callpath_times.values()) == pytest.approx(3.0)

    def test_total_time(self, regions):
        timeline = _build(_simple_trace(regions), regions)
        assert timeline.total_time == pytest.approx(5.0)
        assert timeline.event_count == 8

    def test_converter_applied(self, regions):
        converter = LinearConverter(slope=1.0, intercept=100.0)
        timeline = _build(_simple_trace(regions), regions, converter)
        assert timeline.first_time == pytest.approx(100.0)
        assert timeline.mpi_ops[0].enter == pytest.approx(101.0)

    def test_coll_record_attached(self, regions):
        main = regions.id_of("main")
        barrier = regions.id_of("MPI_Barrier")
        events = [
            EnterEvent(0.0, main),
            EnterEvent(1.0, barrier),
            CollExitEvent(2.0, barrier, 0, 0, 0, 0),
            ExitEvent(2.0, barrier),
            ExitEvent(3.0, main),
        ]
        timeline = _build(events, regions)
        assert timeline.mpi_ops[0].coll is not None
        assert timeline.mpi_ops[0].coll.root == 0

    def test_empty_trace(self, regions):
        timeline = _build([], regions)
        assert timeline.total_time == 0.0
        assert timeline.mpi_ops == []

    def test_unbalanced_trace_rejected(self, regions):
        events = [EnterEvent(0.0, regions.id_of("main"))]
        with pytest.raises(AnalysisError, match="still open"):
            _build(events, regions)

    def test_mismatched_exit_rejected(self, regions):
        events = [
            EnterEvent(0.0, regions.id_of("main")),
            ExitEvent(1.0, regions.id_of("solve")),
        ]
        with pytest.raises(AnalysisError):
            _build(events, regions)

    def test_comm_record_outside_mpi_rejected(self, regions):
        events = [
            EnterEvent(0.0, regions.id_of("main")),
            SendEvent(0.5, 1, 0, 0, 64),
            ExitEvent(1.0, regions.id_of("main")),
        ]
        with pytest.raises(AnalysisError, match="outside an MPI region"):
            _build(events, regions)

    def test_duration_never_negative(self, regions):
        op_events = [
            EnterEvent(0.0, regions.id_of("MPI_Send")),
            SendEvent(0.0, 1, 0, 0, 1),
            ExitEvent(0.0, regions.id_of("MPI_Send")),
        ]
        timeline = _build(op_events, regions)
        assert timeline.mpi_ops[0].duration == 0.0
