"""Tests for generator-based simulated processes."""

import pytest

from repro.errors import SimulationError
from repro.ids import Location
from repro.sim.process import ProcessState, SimProcess
from repro.topology.machine import CpuSpec
from repro.topology.metacomputer import ProcessSlot


def _slot(rank=0):
    return ProcessSlot(rank=rank, location=Location(0, 0, rank), cpu=CpuSpec("c", 2.0))


class TestStepping:
    def test_yields_requests_and_receives_results(self):
        received = []

        def gen():
            value = yield "req1"
            received.append(value)
            yield "req2"

        proc = SimProcess(_slot(), gen())
        assert proc.step(None) == "req1"
        assert proc.state is ProcessState.BLOCKED
        assert proc.step("result1") == "req2"
        assert received == ["result1"]

    def test_completion(self):
        def gen():
            yield "only"

        proc = SimProcess(_slot(), gen())
        proc.step(None)
        assert proc.step("x") is None
        assert proc.state is ProcessState.DONE
        assert proc.done

    def test_empty_generator_finishes_immediately(self):
        def gen():
            return
            yield  # pragma: no cover

        proc = SimProcess(_slot(), gen())
        assert proc.step(None) is None
        assert proc.done

    def test_stepping_done_process_raises(self):
        def gen():
            return
            yield  # pragma: no cover

        proc = SimProcess(_slot(), gen())
        proc.step(None)
        with pytest.raises(SimulationError):
            proc.step(None)

    def test_app_exception_wrapped_with_rank(self):
        def gen():
            yield "a"
            raise ValueError("boom")

        proc = SimProcess(_slot(rank=7), gen())
        proc.step(None)
        with pytest.raises(SimulationError, match="rank 7"):
            proc.step(None)
        assert proc.state is ProcessState.FAILED
        assert isinstance(proc.failure, ValueError)
