"""Property-style robustness tests for the trace codec.

The codec contract under test (PR: engine/codec correctness fixes):

* every decode diagnostic for a bad record points at the offset of that
  record's **kind tag** (the record start), not somewhere inside it;
* ``encode_events`` never leaks a raw ``struct.error`` — out-of-range
  fields surface as :class:`~repro.errors.EncodingError` naming the event;
* the streaming decoder (:func:`iter_events`) and the one-shot decoder
  (:func:`decode_events`) agree on every input, including across the
  streaming chunk boundary.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import EncodingError
from repro.trace.encoding import decode_events, encode_events, iter_events
from repro.trace.events import (
    CollExitEvent,
    EnterEvent,
    ExitEvent,
    OmpRegionEvent,
    RecvEvent,
    SendEvent,
)

times = st.floats(min_value=0.0, max_value=1e9, allow_nan=False)
region_ids = st.integers(min_value=0, max_value=2**32 - 1)
ranks = st.integers(min_value=-1, max_value=2**31 - 1)
tags = st.integers(min_value=-1, max_value=2**31 - 1)
comms = st.integers(min_value=0, max_value=2**32 - 1)
sizes = st.integers(min_value=0, max_value=2**63 - 1)

#: All six kinds, OMPREGION included (the older property suite predates it).
events = st.one_of(
    st.builds(EnterEvent, time=times, region=region_ids),
    st.builds(ExitEvent, time=times, region=region_ids),
    st.builds(SendEvent, time=times, dest=ranks, tag=tags, comm=comms, size=sizes),
    st.builds(RecvEvent, time=times, source=ranks, tag=tags, comm=comms, size=sizes),
    st.builds(
        CollExitEvent,
        time=times,
        region=region_ids,
        comm=comms,
        root=ranks,
        sent=sizes,
        recvd=sizes,
    ),
    st.builds(
        OmpRegionEvent,
        time=times,
        region=region_ids,
        nthreads=st.integers(min_value=1, max_value=2**32 - 1),
        busy_sum=times,
        busy_max=times,
    ),
)


def _record_offsets(rank, evs):
    """Byte offset of each event's record (its kind tag) plus the blob end."""
    offsets = [len(encode_events(rank, evs[:i])) for i in range(len(evs) + 1)]
    return offsets


class TestRoundTrip:
    @given(rank=st.integers(min_value=0, max_value=2**32 - 1),
           evs=st.lists(events, max_size=60))
    @settings(max_examples=120)
    def test_all_kinds_round_trip(self, rank, evs):
        decoded_rank, decoded = decode_events(encode_events(rank, evs))
        assert decoded_rank == rank
        assert decoded == evs

    @given(evs=st.lists(events, max_size=40))
    def test_streaming_matches_one_shot(self, evs):
        blob = encode_events(7, evs)
        rank_a, listed = decode_events(blob)
        rank_b, streamed = iter_events(blob)
        assert rank_a == rank_b == 7
        assert list(streamed) == listed

    def test_round_trip_across_chunk_boundary(self):
        # More records than one streaming chunk, with kind alternation so
        # both the singleton and the run-batched decode paths execute.
        evs = []
        for i in range(3000):
            evs.append(EnterEvent(float(i), i % 7))
            if i % 5 == 0:
                evs.append(SendEvent(float(i), 1, 0, 0, 64))
        blob = encode_events(0, evs)
        assert decode_events(blob)[1] == evs
        assert list(iter_events(blob)[1]) == evs


class TestDecodeDiagnostics:
    @given(evs=st.lists(events, min_size=1, max_size=12), data=st.data())
    @settings(max_examples=120)
    def test_truncation_reports_record_start(self, evs, data):
        """Any cut strictly inside a record names that record's offset."""
        blob = encode_events(0, evs)
        offsets = _record_offsets(0, evs)
        index = data.draw(st.integers(min_value=0, max_value=len(evs) - 1))
        cut = data.draw(
            st.integers(min_value=offsets[index] + 1, max_value=offsets[index + 1] - 1)
        )
        with pytest.raises(EncodingError, match=rf"at offset {offsets[index]}\b"):
            decode_events(blob[:cut])
        rank, stream = iter_events(blob[:cut])
        with pytest.raises(EncodingError, match=rf"at offset {offsets[index]}\b"):
            list(stream)

    @given(evs=st.lists(events, min_size=1, max_size=12), data=st.data())
    @settings(max_examples=120)
    def test_flipped_kind_byte_reports_its_offset(self, evs, data):
        blob = bytearray(encode_events(0, evs))
        offsets = _record_offsets(0, evs)
        index = data.draw(st.integers(min_value=0, max_value=len(evs) - 1))
        bad_kind = data.draw(st.integers(min_value=7, max_value=255))
        blob[offsets[index]] = bad_kind
        with pytest.raises(
            EncodingError,
            match=rf"unknown record kind {bad_kind} at offset {offsets[index]}\b",
        ):
            decode_events(bytes(blob))

    def test_kind_zero_rejected(self):
        blob = bytearray(encode_events(0, [EnterEvent(1.0, 2)]))
        offset = len(encode_events(0, []))
        blob[offset] = 0
        with pytest.raises(EncodingError, match=f"unknown record kind 0 at offset {offset}"):
            decode_events(bytes(blob))

    def test_truncation_of_later_record_names_later_offset(self):
        evs = [EnterEvent(1.0, 2), SendEvent(2.0, 1, 0, 0, 64)]
        blob = encode_events(0, evs)
        offsets = _record_offsets(0, evs)
        with pytest.raises(EncodingError, match=f"truncated SEND record at offset {offsets[1]}"):
            decode_events(blob[: offsets[1] + 5])


class TestEncodeErrors:
    def test_negative_size_wrapped(self):
        with pytest.raises(EncodingError, match="SEND event at index 1"):
            encode_events(
                0, [EnterEvent(0.0, 1), SendEvent(1.0, 2, 0, 0, -5)]
            )

    def test_out_of_range_region_wrapped(self):
        with pytest.raises(EncodingError, match="ENTER event at index 0"):
            encode_events(0, [EnterEvent(0.0, 2**32)])

    def test_bad_header_rank_wrapped(self):
        with pytest.raises(EncodingError, match="trace header"):
            encode_events(2**32, [])
        with pytest.raises(EncodingError, match="trace header"):
            encode_events(-1, [])

    def test_unknown_event_kind_rejected(self):
        class Bogus:
            kind = 99

        with pytest.raises(EncodingError, match="cannot encode event kind"):
            encode_events(0, [Bogus()])

    @given(size=st.integers(min_value=2**64, max_value=2**80))
    @settings(max_examples=20)
    def test_oversized_fields_wrapped(self, size):
        with pytest.raises(EncodingError):
            encode_events(0, [RecvEvent(0.0, 1, 0, 0, size)])


class TestEventSemantics:
    def test_equal_fields_different_kind_not_equal(self):
        assert EnterEvent(1.0, 2) != ExitEvent(1.0, 2)
        assert EnterEvent(1.0, 2) == EnterEvent(1.0, 2)

    def test_events_hashable_and_immutable(self):
        event = EnterEvent(1.0, 2)
        assert hash(event) == hash(EnterEvent(1.0, 2))
        with pytest.raises(AttributeError):
            event.time = 3.0
