"""Tests for MPI timing parameters and FIFO channel clamping."""

import pytest

from repro.errors import SimulationError
from repro.sim.transfer import ChannelClock, SimParams


class TestSimParams:
    def test_eager_threshold(self):
        params = SimParams(eager_threshold_bytes=1000)
        assert params.is_eager(1000)
        assert not params.is_eager(1001)

    def test_eager_send_cost_grows_with_size(self):
        params = SimParams()
        assert params.eager_send_cost_s(10**6) > params.eager_send_cost_s(0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"eager_threshold_bytes": -1},
            {"send_overhead_s": -1.0},
            {"copy_bandwidth_bps": 0.0},
            {"measurement_exchanges": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(SimulationError):
            SimParams(**kwargs)


class TestChannelClock:
    def test_clamps_to_previous_arrival(self):
        clock = ChannelClock()
        channel = (0, 1, 2)
        assert clock.clamp(channel, 1.0) == 1.0
        assert clock.clamp(channel, 0.5) == 1.0  # cannot overtake
        assert clock.clamp(channel, 2.0) == 2.0

    def test_channels_are_independent(self):
        clock = ChannelClock()
        assert clock.clamp((0, 1, 2), 5.0) == 5.0
        assert clock.clamp((0, 2, 1), 1.0) == 1.0
