"""Tests regenerating Tables 1–3 and checking their paper shapes."""

import pytest

from repro.experiments.configs import (
    EXPERIMENT1_BLOCKS,
    EXPERIMENT2_BLOCKS,
    experiment1,
    experiment2,
    table3_text,
)
from repro.experiments.table1 import check_table1_shape, run_table1, table1_text
from repro.experiments.table2 import check_table2_shape, table2_text


class TestTable1:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_table1(seed=0, repetitions=200)

    def test_three_rows(self, rows):
        assert len(rows) == 3

    def test_shape_checks_pass(self, rows):
        checks = check_table1_shape(rows)
        assert all(checks.values()), checks

    def test_external_mean_near_paper(self, rows):
        external = next(r for r in rows if "external" in r.label)
        assert external.mean_s == pytest.approx(9.88e-4, rel=0.3)

    def test_internal_means_near_paper(self, rows):
        fzj = next(r for r in rows if r.label.startswith("FZJ ("))
        fhbrs = next(r for r in rows if r.label.startswith("FH-BRS"))
        assert fzj.mean_s == pytest.approx(2.15e-5, rel=0.3)
        assert fhbrs.mean_s == pytest.approx(4.44e-5, rel=0.3)

    def test_text_rendering(self, rows):
        text = table1_text(rows)
        assert "FZJ - FH-BRS" in text
        assert "mean [us]" in text

    def test_deterministic(self):
        a = run_table1(seed=5, repetitions=50)
        b = run_table1(seed=5, repetitions=50)
        assert a[0].mean_s == b[0].mean_s


class TestTable2:
    def test_shape_checks_pass(self, table2_outcome):
        checks = check_table2_shape(table2_outcome["rows"])
        assert all(checks.values()), checks

    def test_rows_in_paper_order(self, table2_outcome):
        assert [r.scheme for r in table2_outcome["rows"]] == [
            "single-flat-offset",
            "two-flat-offsets",
            "two-hierarchical-offsets",
        ]

    def test_hierarchical_eliminates_violations(self, table2_outcome):
        hierarchical = table2_outcome["rows"][2]
        assert hierarchical.violations == 0

    def test_violation_ratio_roughly_paper(self, table2_outcome):
        """Paper: 7560 vs 2179, a ratio of ≈3.5; ours should be 1.5–10."""
        single, flat, _ = table2_outcome["rows"]
        assert flat.violations > 0
        ratio = single.violations / flat.violations
        assert 1.2 < ratio < 12.0

    def test_flat_violations_avoid_master_metahost(self, table2_outcome):
        """Two-flat errors come from external measurements, so violations
        concentrate on internal messages of non-master metahosts."""
        analyses = table2_outcome["analyses"]
        result = analyses["two-flat-offsets"]
        run = table2_outcome["run"]
        master_machine = run.placement.machine_of(0)
        for stamp in result.violations.stamps:
            if stamp.violates:
                assert stamp.sender_node.machine == stamp.receiver_node.machine
                assert stamp.sender_node.machine != master_machine

    def test_all_schemes_saw_same_messages(self, table2_outcome):
        counts = {r.messages for r in table2_outcome["rows"]}
        assert len(counts) == 1

    def test_text_rendering(self, table2_outcome):
        text = table2_text(table2_outcome["rows"])
        assert "single-flat-offset" in text
        assert "paper" in text


class TestTable3Configs:
    def test_experiment1_placement_matches_table3(self):
        mc, placement, config = experiment1()
        assert placement.size == 32
        # Partrace on the XD1 (machine index of FZJ-XD1), 16 ranks.
        xd1 = mc.metahost_index("FZJ-XD1")
        assert placement.ranks_on_machine(xd1) == list(range(16))
        fhbrs = mc.metahost_index("FH-BRS")
        assert placement.ranks_on_machine(fhbrs) == list(range(16, 24))
        caesar = mc.metahost_index("CAESAR")
        assert placement.ranks_on_machine(caesar) == list(range(24, 32))

    def test_experiment1_nodes_per_block(self):
        _, placement, _ = experiment1()
        # 8 XD1 nodes × 2, 2 FH-BRS nodes × 4, 4 CAESAR nodes × 2.
        from collections import Counter

        per_node = Counter(slot.node for slot in placement.slots)
        machine_nodes = Counter(node.machine for node in per_node)
        assert machine_nodes[placement.slot(0).location.machine] == 8

    def test_experiment2_single_metahost(self):
        mc, placement, _ = experiment2()
        assert not mc.is_metacomputing
        assert placement.size == 32
        assert len({slot.location.machine for slot in placement.slots}) == 1

    def test_both_experiments_split_models_equally(self):
        for builder in (experiment1, experiment2):
            _, _, config = builder()
            assert len(config.trace_ranks) == len(config.partrace_ranks) == 16

    def test_blocks_constants(self):
        assert EXPERIMENT1_BLOCKS[0] == ("FZJ-XD1", 8, 2)
        assert EXPERIMENT2_BLOCKS == (("IBM-AIX-POWER", 1, 16),) * 2

    def test_table3_text(self):
        text = table3_text()
        assert "Experiment 1" in text and "Experiment 2" in text
