"""The supervised worker pool: crash/hang recovery, retry, and fallback.

Chaos hooks run *inside* the worker process before the task function —
they are module-level (with :func:`functools.partial` for state) so they
survive the process boundary.  Cross-process "fail only once" state lives
in marker files created with ``O_EXCL`` so concurrent workers cannot both
claim the first-victim slot.
"""

from __future__ import annotations

import functools
import os
import signal
import time

import pytest

from repro.analysis.parallel import ParallelReplayAnalyzer
from repro.api import AnalysisRequest, analyze
from repro.apps.imbalance import make_imbalance_app
from repro.faults import FaultPlan, TraceCorruption
from repro.resilience import ExecutionReport, PoolConfig, SupervisedPool
from repro.topology.presets import uniform_metacomputer

from tests.conftest import run_app
from tests.test_parallel_analysis import assert_identical

# -- worker-side task functions and chaos hooks (must be module-level) ---------


def _square(x):
    return x * x


def _boom_on_two(x):
    if x == 2:
        raise ValueError("task 2 is broken")
    return x * x


def _kill_self(task):
    os.kill(os.getpid(), signal.SIGKILL)


def _kill_once(marker_dir, task):
    """SIGKILL the worker the first time it sees each task value."""
    marker = os.path.join(marker_dir, f"killed-{task}")
    try:
        fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return
    os.close(fd)
    os.kill(os.getpid(), signal.SIGKILL)


def _kill_first(marker_dir, task):
    """SIGKILL exactly one worker across the whole run, whatever its task."""
    marker = os.path.join(marker_dir, "killed")
    try:
        fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return
    os.close(fd)
    os.kill(os.getpid(), signal.SIGKILL)


def _hang(task):
    time.sleep(120.0)


def _sigstop_self(task):
    os.kill(os.getpid(), signal.SIGSTOP)


def _sigstop_first(marker_dir, task):
    """SIGSTOP exactly one worker across the whole run, whatever its task."""
    marker = os.path.join(marker_dir, "stopped")
    try:
        fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return
    os.close(fd)
    os.kill(os.getpid(), signal.SIGSTOP)


def _fast_config(**overrides) -> PoolConfig:
    defaults = dict(
        max_workers=2,
        timeout_s=30.0,
        max_retries=2,
        backoff_base_s=0.01,
        poll_interval_s=0.01,
        heartbeat_interval_s=0.05,
        heartbeat_grace_s=10.0,
    )
    defaults.update(overrides)
    return PoolConfig(**defaults)


# -- pure pool behaviour -------------------------------------------------------


class TestCleanRuns:
    def test_map_in_task_order(self):
        pool = SupervisedPool(_square, _fast_config(max_workers=3))
        results, report = pool.run([3, 1, 4, 1, 5])
        assert results == [9, 1, 16, 1, 25]
        assert report.clean
        assert report.attempts == 5
        assert report.retries == 0
        assert report.fallbacks == 0
        assert all(t.wall_time_s >= 0.0 for t in report.tasks)

    def test_empty_task_list(self):
        results, report = SupervisedPool(_square, _fast_config()).run([])
        assert results == []
        assert report.clean
        assert report.tasks == []

    def test_summary_mentions_counts(self):
        _results, report = SupervisedPool(_square, _fast_config()).run([1, 2])
        text = report.summary()
        assert "2 task(s)" in text
        assert "2 attempt(s)" in text
        assert "0 serial fallback(s)" in text


class TestApplicationErrors:
    def test_lowest_index_error_is_raised(self):
        pool = SupervisedPool(_boom_on_two, _fast_config(max_workers=2))
        with pytest.raises(ValueError, match="task 2 is broken"):
            pool.run([0, 1, 2, 3])

    def test_error_not_retried(self):
        pool = SupervisedPool(_boom_on_two, _fast_config(max_workers=1))
        try:
            pool.run([2])
        except ValueError:
            pass
        # An application error is the task's answer, not an infrastructure
        # failure: exactly one dispatch, no retry, no fallback.


class TestCrashRecovery:
    def test_sigkill_once_recovers_by_retry(self, tmp_path):
        hook = functools.partial(_kill_once, str(tmp_path))
        pool = SupervisedPool(_square, _fast_config(chaos_hook=hook))
        results, report = pool.run([2, 3, 4])
        assert results == [4, 9, 16]
        assert not report.clean
        assert report.retries == 3  # every task's first worker was shot
        assert report.fallbacks == 0
        for task in report.tasks:
            assert task.attempts == 2
            assert len(task.failures) == 1
            assert "died" in task.failures[0]
            assert "signal 9" in task.failures[0]

    def test_poisoned_task_falls_back_to_serial(self):
        # Every worker dies, so after max_retries the supervisor must run
        # the task in-process — and still produce the right answer.
        pool = SupervisedPool(
            _square, _fast_config(max_retries=1, chaos_hook=_kill_self)
        )
        results, report = pool.run([7])
        assert results == [49]
        task = report.tasks[0]
        assert task.fallback
        assert task.attempts == 2  # dispatches only; the fallback is local
        assert len(task.failures) == 2
        assert report.fallbacks == 1


class TestHangRecovery:
    def test_deadline_kills_hung_worker(self):
        # The silent-hang regression: a worker that never returns must not
        # stall the pool.  With retries exhausted by more hanging, the
        # fallback answers — well inside a bound far below the hang time.
        began = time.monotonic()
        pool = SupervisedPool(
            _square,
            _fast_config(max_retries=0, timeout_s=0.4, chaos_hook=_hang),
        )
        results, report = pool.run([6])
        elapsed = time.monotonic() - began
        assert results == [36]
        assert elapsed < 30.0
        task = report.tasks[0]
        assert task.fallback
        assert any("deadline" in f for f in task.failures)

    def test_stale_heartbeat_detected_before_deadline(self):
        # SIGSTOP leaves the process alive but silent: only the heartbeat
        # notices.  The deadline is set far out so the test proves the
        # heartbeat path, not the deadline path.
        pool = SupervisedPool(
            _square,
            _fast_config(
                max_retries=0,
                timeout_s=60.0,
                heartbeat_interval_s=0.05,
                heartbeat_grace_s=0.3,
                chaos_hook=_sigstop_self,
            ),
        )
        began = time.monotonic()
        results, report = pool.run([5])
        elapsed = time.monotonic() - began
        assert results == [25]
        assert elapsed < 30.0
        assert any("heartbeat" in f for f in report.tasks[0].failures)


# -- recovery inside the parallel analyzer ------------------------------------


def _small_run(fault_plan=None, seed=5):
    mc = uniform_metacomputer(metahost_count=2, node_count=2, cpus_per_node=2)
    work = {r: 0.005 * (1 + r % 3) for r in range(8)}
    return run_app(
        mc, 8, make_imbalance_app(work, iterations=3), seed=seed,
        fault_plan=fault_plan,
    )


class TestAnalyzerChaos:
    def test_worker_killed_mid_analysis_recovers(self, tmp_path):
        """The silent-hang satellite: SIGKILL one analysis worker and the
        analyzer must still deliver — bit-identical to serial — within the
        supervision deadline, with the recovery on the record."""
        run = _small_run()
        serial = analyze(run)
        analyzer = ParallelReplayAnalyzer(
            {m: run.reader(m) for m in run.machines_used},
            jobs=4,
            pool_config=_fast_config(
                max_workers=4,
                chaos_hook=functools.partial(_kill_first, str(tmp_path)),
            ),
        )
        began = time.monotonic()
        recovered = analyzer.analyze()
        assert time.monotonic() - began < 60.0
        assert_identical(serial, recovered)
        report = recovered.execution
        assert isinstance(report, ExecutionReport)
        assert report.retries >= 1
        assert any("signal 9" in failure for failure in report.failures)

    def test_chaos_acceptance_kill_plus_corruption(self, tmp_path):
        """The issue's chaos criterion: a SIGKILLed worker *and* a corrupted
        archive block in the same jobs=4 analysis — completes via retry,
        matches the serial degraded result, and the ExecutionReport shows
        the recovery."""
        plan = FaultPlan(
            name="bitrot",
            seed=3,
            specs=(TraceCorruption(rank=3, at_fraction=0.5, length=8),),
        )
        run = _small_run(fault_plan=plan, seed=3)
        serial = analyze(run, AnalysisRequest(degraded=True))
        analyzer = ParallelReplayAnalyzer(
            {m: run.reader(m) for m in run.machines_used},
            degraded=True,
            jobs=4,
            pool_config=_fast_config(
                max_workers=4,
                chaos_hook=functools.partial(_kill_first, str(tmp_path)),
            ),
        )
        recovered = analyzer.analyze()
        assert_identical(serial, recovered)
        assert recovered.execution is not None
        assert not recovered.execution.clean
        assert recovered.execution.retries >= 1

    def test_sigstopped_worker_during_degraded_analysis(self, tmp_path):
        """A SIGSTOPped (wedged, not dead) worker during a *degraded-mode*
        parallel analysis: the heartbeat detects the stall, the retry
        redoes the shard, and the result still matches the serial degraded
        run bit for bit."""
        plan = FaultPlan(
            name="bitrot",
            seed=3,
            specs=(TraceCorruption(rank=3, at_fraction=0.5, length=8),),
        )
        run = _small_run(fault_plan=plan, seed=3)
        serial = analyze(run, AnalysisRequest(degraded=True))
        analyzer = ParallelReplayAnalyzer(
            {m: run.reader(m) for m in run.machines_used},
            degraded=True,
            jobs=4,
            pool_config=_fast_config(
                max_workers=4,
                timeout_s=60.0,
                heartbeat_interval_s=0.05,
                heartbeat_grace_s=0.3,
                chaos_hook=functools.partial(_sigstop_first, str(tmp_path)),
            ),
        )
        began = time.monotonic()
        recovered = analyzer.analyze()
        assert time.monotonic() - began < 60.0
        assert_identical(serial, recovered)
        assert recovered.execution is not None
        assert not recovered.execution.clean
        assert any("heartbeat" in f for f in recovered.execution.failures)

    def test_clean_parallel_run_reports_clean_execution(self):
        run = _small_run()
        result = analyze(run, AnalysisRequest(jobs=4))
        assert result.execution is not None
        assert result.execution.clean
        assert result.execution.retries == 0
        assert result.execution.fallbacks == 0

    def test_serial_run_has_no_execution_report(self):
        run = _small_run()
        assert analyze(run).execution is None

    def test_timeout_and_retries_reach_the_pool(self):
        run = _small_run()
        result = analyze(run, AnalysisRequest(jobs=2, timeout=123.0, max_retries=5))
        assert result.execution is not None
        assert result.execution.clean
