"""Seed robustness of the headline reproductions.

The paper's shapes must not be artifacts of one lucky seed: the Figure 6
bands and the Table 2 ordering have to hold across random seeds (different
clock draws, latency jitter, congestion episodes, and work noise).
"""

import pytest

from repro.analysis.patterns import GRID_LATE_SENDER, GRID_WAIT_AT_BARRIER
from repro.experiments.figures import run_metatrace_experiment
from repro.experiments.table2 import run_table2

pytestmark = pytest.mark.slow


class TestSeedRobustness:
    @pytest.mark.parametrize("seed", [3, 77])
    def test_figure6_bands_hold_across_seeds(self, seed):
        outcome = run_metatrace_experiment(figure=1, seed=seed, coupling_intervals=3)
        assert 5.0 <= outcome.grid_late_sender_pct <= 15.0
        assert 15.0 <= outcome.grid_wait_at_barrier_pct <= 32.0

    @pytest.mark.parametrize("seed", [1, 99])
    def test_figure7_shape_holds_across_seeds(self, seed):
        outcome = run_metatrace_experiment(figure=2, seed=seed, coupling_intervals=3)
        assert outcome.result.metric_total(GRID_LATE_SENDER) == 0.0
        assert outcome.result.metric_total(GRID_WAIT_AT_BARRIER) == 0.0
        assert outcome.wait_at_barrier_pct < 5.0
        assert outcome.late_sender_in("getsteering") > 0.5

    @pytest.mark.parametrize("seed", [2, 31])
    def test_table2_ordering_holds_across_seeds(self, seed):
        from repro.apps.clockbench import ClockBenchConfig

        config = ClockBenchConfig(
            rounds=160, exchanges_per_round=2, inter_round_gap_s=0.15
        )
        rows, _run, _analyses = run_table2(seed=seed, config=config)
        by_scheme = {row.scheme: row.violations for row in rows}
        assert by_scheme["two-hierarchical-offsets"] == 0
        assert by_scheme["two-flat-offsets"] > 0
        assert (
            by_scheme["single-flat-offset"] > by_scheme["two-flat-offsets"]
        )
