"""Tests for the command-line interface."""

import pytest

from repro.cli import COMMANDS, main


class TestCli:
    def test_table3_fast_path(self, capsys):
        assert main(["table3"]) == 0
        out = capsys.readouterr().out
        assert "Experiment 1" in out and "Experiment 2" in out

    def test_table1(self, capsys):
        assert main(["table1", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "FZJ - FH-BRS" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure99"])

    def test_commands_registry_complete(self):
        assert set(COMMANDS) == {
            "table1",
            "table2",
            "table3",
            "figure1",
            "figure3",
            "figure4",
            "figure6",
            "figure7",
            "faults",
        }

    def test_figure1(self, capsys):
        assert main(["figure1"]) == 0
        assert "A-B=" in capsys.readouterr().out

    def test_figure4(self, capsys):
        assert main(["figure4"]) == 0
        out = capsys.readouterr().out
        assert "Late Sender" in out and "Wait at NxN" in out

    @pytest.mark.slow
    def test_figure6_output(self, capsys):
        assert main(["figure6"]) == 0
        out = capsys.readouterr().out
        assert "grid late sender" in out
        assert "Late Sender" in out
