"""Tests for the discrete-event engine."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Engine


class TestScheduling:
    def test_runs_in_time_order(self):
        engine = Engine()
        order = []
        engine.schedule(3.0, lambda: order.append("c"))
        engine.schedule(1.0, lambda: order.append("a"))
        engine.schedule(2.0, lambda: order.append("b"))
        engine.run()
        assert order == ["a", "b", "c"]

    def test_ties_break_by_insertion(self):
        engine = Engine()
        order = []
        engine.schedule(1.0, lambda: order.append(1))
        engine.schedule(1.0, lambda: order.append(2))
        engine.schedule(1.0, lambda: order.append(3))
        engine.run()
        assert order == [1, 2, 3]

    def test_now_advances(self):
        engine = Engine()
        seen = []
        engine.schedule(0.5, lambda: seen.append(engine.now))
        engine.schedule(1.5, lambda: seen.append(engine.now))
        engine.run()
        assert seen == [0.5, 1.5]

    def test_nested_scheduling(self):
        engine = Engine()
        seen = []

        def outer():
            engine.schedule(1.0, lambda: seen.append(engine.now))

        engine.schedule(1.0, outer)
        engine.run()
        assert seen == [2.0]

    def test_rejects_past_scheduling(self):
        engine = Engine()
        engine.schedule(1.0, lambda: None)
        engine.run()
        with pytest.raises(SimulationError):
            engine.schedule_at(0.5, lambda: None)
        with pytest.raises(SimulationError):
            engine.schedule(-1.0, lambda: None)

    def test_zero_delay_allowed(self):
        engine = Engine()
        hits = []
        engine.schedule(0.0, lambda: hits.append(1))
        engine.run()
        assert hits == [1]


class TestCancellation:
    def test_cancelled_event_skipped(self):
        engine = Engine()
        hits = []
        handle = engine.schedule(1.0, lambda: hits.append("cancelled"))
        engine.schedule(2.0, lambda: hits.append("kept"))
        handle.cancel()
        engine.run()
        assert hits == ["kept"]
        assert handle.cancelled

    def test_empty_considers_cancellation(self):
        engine = Engine()
        handle = engine.schedule(1.0, lambda: None)
        assert not engine.empty()
        handle.cancel()
        assert engine.empty()


class TestRunLimits:
    def test_until_stops_before_future_events(self):
        engine = Engine()
        hits = []
        engine.schedule(1.0, lambda: hits.append(1))
        engine.schedule(5.0, lambda: hits.append(2))
        engine.run(until=2.0)
        assert hits == [1]
        assert engine.now == 2.0
        engine.run()
        assert hits == [1, 2]

    def test_max_events_guards_livelock(self):
        engine = Engine()

        def reschedule():
            engine.schedule(0.0, reschedule)

        engine.schedule(0.0, reschedule)
        with pytest.raises(SimulationError):
            engine.run(max_events=100)

    def test_processed_events_counter(self):
        engine = Engine()
        for i in range(5):
            engine.schedule(float(i), lambda: None)
        engine.run()
        assert engine.processed_events == 5
