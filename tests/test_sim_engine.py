"""Tests for the discrete-event engine."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Engine


class TestScheduling:
    def test_runs_in_time_order(self):
        engine = Engine()
        order = []
        engine.schedule(3.0, lambda: order.append("c"))
        engine.schedule(1.0, lambda: order.append("a"))
        engine.schedule(2.0, lambda: order.append("b"))
        engine.run()
        assert order == ["a", "b", "c"]

    def test_ties_break_by_insertion(self):
        engine = Engine()
        order = []
        engine.schedule(1.0, lambda: order.append(1))
        engine.schedule(1.0, lambda: order.append(2))
        engine.schedule(1.0, lambda: order.append(3))
        engine.run()
        assert order == [1, 2, 3]

    def test_now_advances(self):
        engine = Engine()
        seen = []
        engine.schedule(0.5, lambda: seen.append(engine.now))
        engine.schedule(1.5, lambda: seen.append(engine.now))
        engine.run()
        assert seen == [0.5, 1.5]

    def test_nested_scheduling(self):
        engine = Engine()
        seen = []

        def outer():
            engine.schedule(1.0, lambda: seen.append(engine.now))

        engine.schedule(1.0, outer)
        engine.run()
        assert seen == [2.0]

    def test_rejects_past_scheduling(self):
        engine = Engine()
        engine.schedule(1.0, lambda: None)
        engine.run()
        with pytest.raises(SimulationError):
            engine.schedule_at(0.5, lambda: None)
        with pytest.raises(SimulationError):
            engine.schedule(-1.0, lambda: None)

    def test_zero_delay_allowed(self):
        engine = Engine()
        hits = []
        engine.schedule(0.0, lambda: hits.append(1))
        engine.run()
        assert hits == [1]


class TestCancellation:
    def test_cancelled_event_skipped(self):
        engine = Engine()
        hits = []
        handle = engine.schedule(1.0, lambda: hits.append("cancelled"))
        engine.schedule(2.0, lambda: hits.append("kept"))
        handle.cancel()
        engine.run()
        assert hits == ["kept"]
        assert handle.cancelled

    def test_empty_considers_cancellation(self):
        engine = Engine()
        handle = engine.schedule(1.0, lambda: None)
        assert not engine.empty()
        handle.cancel()
        assert engine.empty()


class TestRunLimits:
    def test_until_stops_before_future_events(self):
        engine = Engine()
        hits = []
        engine.schedule(1.0, lambda: hits.append(1))
        engine.schedule(5.0, lambda: hits.append(2))
        engine.run(until=2.0)
        assert hits == [1]
        assert engine.now == 2.0
        engine.run()
        assert hits == [1, 2]

    def test_max_events_guards_livelock(self):
        engine = Engine()

        def reschedule():
            engine.schedule(0.0, reschedule)

        engine.schedule(0.0, reschedule)
        with pytest.raises(SimulationError):
            engine.run(max_events=100)

    def test_processed_events_counter(self):
        engine = Engine()
        for i in range(5):
            engine.schedule(float(i), lambda: None)
        engine.run()
        assert engine.processed_events == 5

    def test_until_advances_now_when_heap_drains_early(self):
        # Regression: the heap drains at t=1 but simulated idle time still
        # passes until the run horizon — now must end up at `until`, not
        # stay stale at the last event's stamp.
        engine = Engine()
        engine.schedule(1.0, lambda: None)
        engine.run(until=5.0)
        assert engine.now == 5.0
        # Scheduling relative to the horizon must therefore be legal.
        engine.schedule_at(5.0, lambda: None)

    def test_until_advances_now_on_empty_heap(self):
        engine = Engine()
        engine.run(until=3.0)
        assert engine.now == 3.0

    def test_until_never_moves_now_backwards(self):
        engine = Engine()
        engine.schedule(2.0, lambda: None)
        engine.run()
        assert engine.now == 2.0
        engine.run(until=1.0)
        assert engine.now == 2.0


class TestPendingAccounting:
    def test_pending_counts_live_entries(self):
        engine = Engine()
        handles = [engine.schedule(float(i + 1), lambda: None) for i in range(3)]
        assert engine.pending_events == 3
        handles[1].cancel()
        assert engine.pending_events == 2
        assert not engine.empty()
        engine.run()
        assert engine.pending_events == 0
        assert engine.empty()

    def test_double_cancel_decrements_once(self):
        engine = Engine()
        handle = engine.schedule(1.0, lambda: None)
        other = engine.schedule(2.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert engine.pending_events == 1
        engine.run()
        assert engine.pending_events == 0
        assert not other.cancelled

    def test_cancel_after_execution_is_noop(self):
        engine = Engine()
        hits = []
        handle = engine.schedule(1.0, lambda: hits.append(1))
        engine.schedule(2.0, lambda: None)
        engine.run(until=1.5)
        assert hits == [1]
        handle.cancel()  # already executed: must not touch the live counter
        assert not handle.cancelled
        assert engine.pending_events == 1
        engine.run()
        assert engine.pending_events == 0

    def test_cancelled_tie_preserves_order_of_survivors(self):
        engine = Engine()
        order = []
        engine.schedule(1.0, lambda: order.append(1))
        middle = engine.schedule(1.0, lambda: order.append(2))
        engine.schedule(1.0, lambda: order.append(3))
        middle.cancel()
        engine.run()
        assert order == [1, 3]
        assert engine.processed_events == 2


class TestNonFiniteTimes:
    """Regression: ``delay < 0`` is False for NaN, so NaN/inf stamps used to
    reach the heap, where a single NaN breaks every comparison and silently
    corrupts event ordering for the rest of the run."""

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), float("-inf")])
    def test_schedule_rejects_non_finite_delay(self, bad):
        engine = Engine()
        with pytest.raises(SimulationError):
            engine.schedule(bad, lambda: None)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), float("-inf")])
    def test_schedule_at_rejects_non_finite_time(self, bad):
        engine = Engine()
        with pytest.raises(SimulationError):
            engine.schedule_at(bad, lambda: None)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), float("-inf")])
    def test_call_later_rejects_non_finite_delay(self, bad):
        engine = Engine()
        with pytest.raises(SimulationError):
            engine.call_later(bad, lambda: None)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), float("-inf")])
    def test_call_at_rejects_non_finite_time(self, bad):
        engine = Engine()
        with pytest.raises(SimulationError):
            engine.call_at(bad, lambda: None)

    def test_rejection_leaves_engine_usable(self):
        engine = Engine()
        with pytest.raises(SimulationError):
            engine.schedule(float("nan"), lambda: None)
        hits = []
        engine.schedule(1.0, lambda: hits.append(1))
        engine.run()
        assert hits == [1]
        assert engine.pending_events == 0


class TestHandleLessScheduling:
    def test_call_later_runs_in_time_order(self):
        engine = Engine()
        order = []
        engine.call_later(3.0, lambda: order.append("c"))
        engine.call_later(1.0, lambda: order.append("a"))
        engine.call_at(2.0, lambda: order.append("b"))
        engine.run()
        assert order == ["a", "b", "c"]

    def test_call_at_rejects_past(self):
        engine = Engine()
        engine.schedule(1.0, lambda: None)
        engine.run()
        with pytest.raises(SimulationError):
            engine.call_at(0.5, lambda: None)
        with pytest.raises(SimulationError):
            engine.call_later(-1.0, lambda: None)

    def test_entry_recycling_preserves_order_and_counts(self):
        # Interleave enough handle-less events to cycle entries through the
        # free pool several times; ordering, tie-breaking and the live
        # counter must be unaffected by reuse.
        engine = Engine()
        seen = []
        for i in range(500):
            engine.call_later(float(i % 7), lambda i=i: seen.append(i))
        engine.run()
        assert len(seen) == 500
        assert engine.processed_events == 500
        assert engine.pending_events == 0
        assert seen == sorted(seen, key=lambda i: (i % 7, i))

    def test_recycled_entries_cannot_be_cancelled_by_stale_handles(self):
        # A handle from schedule() must never alias a pooled entry: cancel
        # after execution stays a no-op even once call_later reuses lists.
        engine = Engine()
        handle = engine.schedule(1.0, lambda: None)
        engine.run()
        for _ in range(10):
            engine.call_later(1.0, lambda: None)
        engine.run()
        handle.cancel()
        assert not handle.cancelled
        assert engine.pending_events == 0

    def test_mixed_same_timestamp_batch(self):
        # Same-timestamp wakeups drain in one batch; nested scheduling at
        # the batch time must still run within this run() call.
        engine = Engine()
        order = []
        engine.call_at(1.0, lambda: order.append("a"))
        engine.call_at(1.0, lambda: engine.call_at(1.0, lambda: order.append("c")))
        engine.schedule_at(1.0, lambda: order.append("b"))
        engine.run()
        assert order == ["a", "b", "c"]
        assert engine.now == 1.0
