"""Unit tests for fault plans and the fault injector."""

import numpy as np
import pytest

from repro.errors import CommunicationTimeoutError, ConfigurationError
from repro.faults import (
    FaultInjector,
    FaultPlan,
    FileSystemFault,
    LinkDegradation,
    LinkOutage,
    MessageLoss,
    PingFault,
    TraceCorruption,
    TraceTruncation,
    build_injector,
    link_matches,
)
from repro.sim.transfer import RetryPolicy
from repro.topology.network import LinkClass, LinkSpec
from repro.trace.encoding import HEADER_SIZE, encode_events, salvage_events
from repro.trace.events import EnterEvent, ExitEvent

EXTERNAL = LinkSpec(
    latency_s=1e-3,
    jitter_s=1e-4,
    bandwidth_bps=1e8,
    link_class=LinkClass.EXTERNAL,
    name="A<->B",
)
INTERNAL = LinkSpec(
    latency_s=1e-5,
    jitter_s=1e-6,
    bandwidth_bps=1e9,
    link_class=LinkClass.INTERNAL,
    name="A-internal",
)

POLICY = RetryPolicy()


class TestFaultPlan:
    def test_empty_plan_builds_no_injector(self):
        assert build_injector(None) is None
        assert build_injector(FaultPlan()) is None
        assert FaultPlan().is_empty

    def test_non_empty_plan_builds_injector(self):
        injector = build_injector(FaultPlan(specs=(MessageLoss("*", 0.1),)))
        assert isinstance(injector, FaultInjector)

    def test_link_pattern_matching(self):
        assert link_matches("*", EXTERNAL)
        assert link_matches("A<->B", EXTERNAL)
        assert link_matches("external", EXTERNAL)
        assert not link_matches("external", INTERNAL)
        assert not link_matches("A<->B", INTERNAL)

    def test_of_type_filters(self):
        plan = FaultPlan(
            specs=(MessageLoss("*", 0.1), PingFault("*", drop_prob=0.5))
        )
        assert len(plan.of_type(MessageLoss)) == 1
        assert len(plan.of_type(LinkOutage)) == 0

    def test_describe_names_every_spec(self):
        plan = FaultPlan(specs=(MessageLoss("*", 0.1), TraceTruncation(3, 0.5)))
        text = plan.describe()
        assert "MessageLoss" in text and "TraceTruncation" in text
        assert FaultPlan().describe() == "(no faults)"

    @pytest.mark.parametrize(
        "bad",
        [
            lambda: MessageLoss("*", 1.5),
            lambda: MessageLoss("", 0.5),
            lambda: LinkOutage("*", 2.0, 1.0),
            lambda: LinkOutage("*", -1.0, 1.0),
            lambda: LinkDegradation("*", 0.0, 1.0, latency_factor=0.5),
            lambda: PingFault("*", drop_prob=-0.1),
            lambda: PingFault("*", asymmetry_s=-1e-3),
            lambda: FileSystemFault("", fail_count=1),
            lambda: FileSystemFault("m", fail_count=0),
            lambda: TraceTruncation(-1, 0.5),
            lambda: TraceTruncation(0, 1.5),
            lambda: TraceCorruption(0, at_fraction=2.0),
            lambda: TraceCorruption(0, length=0),
        ],
    )
    def test_invalid_specs_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            bad()

    def test_non_spec_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(specs=("not a spec",))


class TestMessageDelivery:
    def test_no_relevant_specs_is_free_and_drawless(self):
        injector = FaultInjector(FaultPlan(specs=(FileSystemFault("*"),), seed=5))
        for _ in range(3):
            assert injector.message_delivery(EXTERNAL, 0.0, POLICY) == 0.0
        # The fast path must not have consumed any fault randomness.
        assert injector.rng.random() == np.random.default_rng(5).random()

    def test_loss_recovered_by_retransmission(self):
        plan = FaultPlan(specs=(MessageLoss("external", 0.2),), seed=1)
        injector = FaultInjector(plan)
        delays = [injector.message_delivery(EXTERNAL, 0.0, POLICY) for _ in range(200)]
        assert injector.counters.retransmits > 0
        assert injector.counters.messages_dropped == injector.counters.retransmits
        # Every failed attempt costs its backoff, so delays are sums of
        # the policy's backoff sequence.
        assert all(d >= 0.0 for d in delays)
        assert any(d > 0.0 for d in delays)

    def test_internal_links_untouched(self):
        plan = FaultPlan(specs=(MessageLoss("external", 1.0),), seed=1)
        injector = FaultInjector(plan)
        assert injector.message_delivery(INTERNAL, 0.0, POLICY) == 0.0

    def test_deterministic_across_instances(self):
        plan = FaultPlan(specs=(MessageLoss("*", 0.4),), seed=9)
        a, b = FaultInjector(plan), FaultInjector(plan)
        for _ in range(100):
            assert a.message_delivery(EXTERNAL, 0.0, POLICY) == b.message_delivery(
                EXTERNAL, 0.0, POLICY
            )
        assert a.counters.as_dict() == b.counters.as_dict()

    def test_short_outage_ridden_out_by_backoff(self):
        # Backoff budget: 200us + 400us + 800us + 1.6ms = 3 ms total.
        plan = FaultPlan(specs=(LinkOutage("*", 0.010, 0.011),), seed=0)
        injector = FaultInjector(plan)
        delay = injector.message_delivery(EXTERNAL, 0.010, POLICY)
        assert 0.001 <= delay <= POLICY.timeout_s
        assert injector.counters.retransmits > 0
        assert injector.counters.timeouts == 0

    def test_long_outage_times_out(self):
        plan = FaultPlan(specs=(LinkOutage("*", 0.0, 10.0),), seed=0)
        injector = FaultInjector(plan)
        with pytest.raises(CommunicationTimeoutError) as info:
            injector.message_delivery(EXTERNAL, 1.0, POLICY)
        assert info.value.attempts == POLICY.max_attempts
        assert info.value.link == "A<->B"
        assert injector.counters.timeouts == 1

    def test_outage_outside_window_is_free(self):
        plan = FaultPlan(specs=(LinkOutage("*", 5.0, 6.0),), seed=0)
        injector = FaultInjector(plan)
        assert injector.message_delivery(EXTERNAL, 1.0, POLICY) == 0.0

    def test_degradation_latency_factor_windowed(self):
        plan = FaultPlan(
            specs=(LinkDegradation("*", 1.0, 2.0, latency_factor=3.0),), seed=0
        )
        injector = FaultInjector(plan)
        assert injector.latency_factor(EXTERNAL, 1.5) == 3.0
        assert injector.latency_factor(EXTERNAL, 2.5) == 1.0


class TestPingFaults:
    def test_drop_and_asymmetry(self):
        plan = FaultPlan(
            specs=(PingFault("external", drop_prob=1.0, asymmetry_s=2e-3),), seed=0
        )
        injector = FaultInjector(plan)
        assert injector.touches_measurement
        assert injector.ping_dropped(EXTERNAL)
        assert not injector.ping_dropped(INTERNAL)
        assert injector.ping_asymmetry_s(EXTERNAL) == 2e-3
        assert injector.ping_asymmetry_s(INTERNAL) == 0.0
        assert injector.counters.pings_dropped == 1


class TestFileSystemFaults:
    def test_transient_budget_counts_down(self):
        plan = FaultPlan(specs=(FileSystemFault("m0", fail_count=2),), seed=0)
        injector = FaultInjector(plan)
        assert injector.fs_create_fails("m0")
        assert injector.fs_create_fails("m0")
        assert not injector.fs_create_fails("m0")
        assert not injector.fs_create_fails("m1")
        assert injector.counters.fs_failures_injected == 2

    def test_permanent_failure_never_heals(self):
        plan = FaultPlan(specs=(FileSystemFault("m0", permanent=True),), seed=0)
        injector = FaultInjector(plan)
        for _ in range(10):
            assert injector.fs_create_fails("m0")

    def test_star_matches_every_machine(self):
        plan = FaultPlan(specs=(FileSystemFault("*", fail_count=1),), seed=0)
        injector = FaultInjector(plan)
        assert injector.fs_create_fails("anything")
        assert not injector.fs_create_fails("anything")


def _blob(n_events=20, rank=3):
    events = []
    for i in range(n_events // 2):
        events.append(EnterEvent(time=float(i), region=i))
        events.append(ExitEvent(time=float(i) + 0.5, region=i))
    return encode_events(rank, events), events


class TestTraceMangling:
    def test_truncation_leaves_salvageable_prefix(self):
        blob, events = _blob()
        # 0.53 of the payload lands mid-record (uniform stride), so the
        # salvage must stop at the last whole record before the cut.
        plan = FaultPlan(specs=(TraceTruncation(3, keep_fraction=0.53),), seed=0)
        mangled = FaultInjector(plan).mangle_trace(3, blob)
        assert len(mangled) < len(blob)
        salvaged = salvage_events(mangled)
        assert salvaged.rank == 3
        assert not salvaged.complete
        assert 0 < len(salvaged.events) < len(events)
        assert salvaged.events == events[: len(salvaged.events)]

    def test_other_ranks_untouched(self):
        blob, _ = _blob()
        plan = FaultPlan(specs=(TraceTruncation(7, keep_fraction=0.5),), seed=0)
        assert FaultInjector(plan).mangle_trace(3, blob) == blob

    def test_full_keep_fraction_is_identity(self):
        blob, _ = _blob()
        plan = FaultPlan(specs=(TraceTruncation(3, keep_fraction=1.0),), seed=0)
        assert FaultInjector(plan).mangle_trace(3, blob) == blob

    def test_corruption_stops_salvage_at_boundary(self):
        blob, events = _blob()
        plan = FaultPlan(
            specs=(TraceCorruption(3, at_fraction=0.5, length=4),), seed=0
        )
        injector = FaultInjector(plan)
        mangled = injector.mangle_trace(3, blob)
        assert len(mangled) == len(blob)
        assert injector.counters.traces_corrupted == 1
        salvaged = salvage_events(mangled)
        assert not salvaged.complete
        # The corruption landed on a record boundary, so every salvaged
        # event is genuine — a clean prefix of the original stream.
        assert salvaged.events == events[: len(salvaged.events)]
        assert len(salvaged.events) >= len(events) // 3

    def test_header_survives_truncation(self):
        blob, _ = _blob()
        plan = FaultPlan(specs=(TraceTruncation(3, keep_fraction=0.0),), seed=0)
        mangled = FaultInjector(plan).mangle_trace(3, blob)
        assert len(mangled) == HEADER_SIZE
        salvaged = salvage_events(mangled)
        assert salvaged.rank == 3
        assert salvaged.events == []

    def test_boundary_cut_decodes_complete_but_unbalanced(self):
        blob, events = _blob()
        whole = salvage_events(blob)
        assert whole.complete and whole.balanced
        # Cut after an odd number of records: the blob is a valid shorter
        # trace (complete=True) but its last ENTER has lost its EXIT —
        # only the region balance betrays the truncation.
        record = (len(blob) - HEADER_SIZE) // len(events)
        cut = blob[: HEADER_SIZE + record]
        salvaged = salvage_events(cut)
        assert salvaged.complete
        assert not salvaged.balanced
        assert salvaged.open_regions == 1
