"""The Deadline budget object and its cooperative use by the pool.

The :class:`~repro.resilience.Deadline` is the one handle every layer
shares: these tests pin its clock/cancel semantics and the supervised
pool's run-local budget behaviour — partial results on expiry, per-shard
timeouts clamped to the remaining budget, and the pool staying usable
for the next run (a deadline is not a shutdown).
"""

from __future__ import annotations

import time

import pytest

from repro.errors import TimeBudgetExceeded
from repro.resilience import Deadline
from repro.resilience.pool import SupervisedPool

from tests.test_resilience_pool import _fast_config, _hang, _square


class TestDeadlineObject:
    def test_unbounded_never_expires(self):
        deadline = Deadline()
        assert deadline.remaining() == float("inf")
        assert not deadline.expired()
        assert deadline.reason() is None
        deadline.check()  # does not raise

    def test_positive_budget_required(self):
        with pytest.raises(ValueError, match="positive"):
            Deadline(0)
        with pytest.raises(ValueError, match="positive"):
            Deadline(-1.5)

    def test_budget_counts_down(self):
        deadline = Deadline(60.0)
        remaining = deadline.remaining()
        assert 0.0 < remaining <= 60.0
        assert not deadline.expired()

    def test_expiry_reason_names_the_budget(self):
        deadline = Deadline(0.001)
        time.sleep(0.01)
        assert deadline.expired()
        assert "0.001" in deadline.reason()
        with pytest.raises(TimeBudgetExceeded, match="time budget exhausted"):
            deadline.check()

    def test_cancel_is_immediate_and_idempotent(self):
        deadline = Deadline(3600.0)
        deadline.cancel("client went away")
        deadline.cancel("second reason ignored")
        assert deadline.cancelled
        assert deadline.remaining() == 0.0
        assert deadline.reason() == "client went away"

    def test_exception_carries_reason_and_payload(self):
        exc = TimeBudgetExceeded("why", results={0: "a"}, report="r")
        assert exc.reason == "why"
        assert exc.results == {0: "a"}
        assert exc.report == "r"


class TestPoolDeadline:
    def test_no_deadline_is_the_old_behaviour(self):
        results, report = SupervisedPool(_square, _fast_config()).run([1, 2, 3])
        assert results == [1, 4, 9]
        assert report.clean

    def test_generous_deadline_changes_nothing(self):
        pool = SupervisedPool(_square, _fast_config())
        results, report = pool.run([1, 2, 3], deadline=Deadline(300.0))
        assert results == [1, 4, 9]
        assert report.clean

    def test_expired_deadline_raises_with_partial_payload(self):
        deadline = Deadline(3600.0)
        deadline.cancel("cancelled by client")
        pool = SupervisedPool(_square, _fast_config())
        with pytest.raises(TimeBudgetExceeded) as excinfo:
            pool.run([1, 2, 3], deadline=deadline)
        exc = excinfo.value
        assert exc.reason == "cancelled by client"
        # Nothing ran: every task record carries the cancellation.
        assert len(exc.results) < 3
        assert any(
            any("cancelled" in f for f in task.failures)
            for task in exc.report.tasks
        )

    def test_deadline_bounds_a_wedged_worker(self):
        # timeout_s is far beyond the budget: only the deadline-derived
        # per-shard clamp can end this within the bound.
        pool = SupervisedPool(
            _hang,
            _fast_config(max_workers=2, timeout_s=600.0, max_retries=0),
        )
        began = time.monotonic()
        with pytest.raises(TimeBudgetExceeded):
            pool.run([1, 2], deadline=Deadline(1.0))
        assert time.monotonic() - began < 30.0

    def test_pool_survives_a_blown_budget(self):
        # The deadline is run-local: the same pool must serve the next
        # run cleanly (unlike request_shutdown, which is sticky).
        pool = SupervisedPool(
            _square, _fast_config(), persistent=True
        )
        expired = Deadline(3600.0)
        expired.cancel("first run cancelled")
        with pytest.raises(TimeBudgetExceeded):
            pool.run([1, 2], deadline=expired)
        try:
            results, report = pool.run([5, 6])
            assert results == [25, 36]
            assert report.clean
        finally:
            pool.close()
