"""Tests for point-to-point semantics of the simulated MPI world."""

import numpy as np
import pytest

from repro.errors import DeadlockError, MPIUsageError
from repro.ids import ANY_SOURCE, ANY_TAG
from repro.sim.mpi import World
from repro.sim.transfer import SimParams
from repro.topology.metacomputer import Placement
from repro.topology.presets import single_cluster, uniform_metacomputer


def run_world(mc, nprocs, app, seed=0, params=None):
    placement = Placement.block(mc, nprocs)
    world = World(
        mc,
        placement,
        params=params or SimParams(),
        rng=np.random.default_rng(seed),
    )
    world.launch(app, seed=seed)
    stats = world.run()
    return world, stats


@pytest.fixture
def mc():
    return single_cluster(node_count=4, cpus_per_node=2)


class TestBlockingSendRecv:
    def test_message_delivery(self, mc):
        seen = {}

        def app(ctx):
            if ctx.rank == 0:
                yield ctx.comm.send(1, size=500, tag=3, data={"v": 42})
            elif ctx.rank == 1:
                msg = yield ctx.comm.recv(0, 3)
                seen["msg"] = msg

        run_world(mc, 2, app)
        assert seen["msg"].data == {"v": 42}
        assert seen["msg"].size == 500
        assert seen["msg"].source == 0
        assert seen["msg"].tag == 3

    def test_recv_blocks_until_message(self, mc):
        times = {}

        def app(ctx):
            if ctx.rank == 0:
                yield ctx.compute(0.5)
                yield ctx.comm.send(1, 100, tag=0)
            else:
                yield ctx.comm.recv(0, 0)
                times["recv_done"] = ctx.now

        run_world(mc, 2, app)
        assert times["recv_done"] > 0.5

    def test_fifo_same_channel(self, mc):
        order = []

        def app(ctx):
            if ctx.rank == 0:
                for i in range(5):
                    yield ctx.comm.send(1, 64, tag=9, data=i)
            else:
                for _ in range(5):
                    msg = yield ctx.comm.recv(0, 9)
                    order.append(msg.data)

        run_world(mc, 2, app)
        assert order == [0, 1, 2, 3, 4]

    def test_tags_select_messages(self, mc):
        got = []

        def app(ctx):
            if ctx.rank == 0:
                yield ctx.comm.send(1, 64, tag=1, data="one")
                yield ctx.comm.send(1, 64, tag=2, data="two")
            else:
                msg2 = yield ctx.comm.recv(0, tag=2)
                msg1 = yield ctx.comm.recv(0, tag=1)
                got.extend([msg2.data, msg1.data])

        run_world(mc, 2, app)
        assert got == ["two", "one"]

    def test_any_source_any_tag(self, mc):
        got = []

        def app(ctx):
            if ctx.rank in (0, 1):
                yield ctx.compute(0.01 * (ctx.rank + 1))
                yield ctx.comm.send(2, 64, tag=ctx.rank + 10, data=ctx.rank)
            elif ctx.rank == 2:
                for _ in range(2):
                    msg = yield ctx.comm.recv(ANY_SOURCE, ANY_TAG)
                    got.append(msg.data)

        run_world(mc, 3, app)
        assert sorted(got) == [0, 1]

    def test_eager_sender_does_not_block(self, mc):
        times = {}

        def app(ctx):
            if ctx.rank == 0:
                yield ctx.comm.send(1, 100, tag=0)  # eager
                times["send_done"] = ctx.now
            else:
                yield ctx.compute(1.0)
                yield ctx.comm.recv(0, 0)

        run_world(mc, 2, app)
        assert times["send_done"] < 0.01

    def test_rendezvous_sender_blocks_for_receiver(self, mc):
        times = {}
        params = SimParams(eager_threshold_bytes=1024)

        def app(ctx):
            if ctx.rank == 0:
                yield ctx.comm.send(1, 10**6, tag=0)  # rendezvous
                times["send_done"] = ctx.now
            else:
                yield ctx.compute(1.0)
                yield ctx.comm.recv(0, 0)

        run_world(mc, 2, app, params=params)
        assert times["send_done"] > 1.0


class TestSendrecv:
    def test_pairwise_exchange(self, mc):
        got = {}

        def app(ctx):
            other = 1 - ctx.rank
            msg = yield ctx.comm.sendrecv(
                dest=other, send_size=128, send_tag=5, source=other, recv_tag=5,
                data=f"from{ctx.rank}",
            )
            got[ctx.rank] = msg.data

        run_world(mc, 2, app)
        assert got == {0: "from1", 1: "from0"}

    def test_ring_shift(self, mc):
        got = {}

        def app(ctx):
            succ = (ctx.rank + 1) % ctx.size
            pred = (ctx.rank - 1) % ctx.size
            msg = yield ctx.comm.sendrecv(
                dest=succ, send_size=64, send_tag=1, source=pred, recv_tag=1,
                data=ctx.rank,
            )
            got[ctx.rank] = msg.data

        run_world(mc, 4, app)
        assert got == {0: 3, 1: 0, 2: 1, 3: 2}


class TestTiming:
    def test_transfer_respects_link_latency(self):
        mc = uniform_metacomputer(
            metahost_count=2,
            node_count=1,
            cpus_per_node=1,
            external_latency_s=5e-3,
            external_congestion_prob=0.0,
        )
        times = {}

        def app(ctx):
            if ctx.rank == 0:
                yield ctx.comm.send(1, 64, tag=0)
            else:
                yield ctx.comm.recv(0, 0)
                times["recv"] = ctx.now

        run_world(mc, 2, app)
        assert times["recv"] >= 5e-3

    def test_intra_node_faster_than_internal(self, mc):
        def make_app(receiver):
            times = {}

            def app(ctx):
                if ctx.rank == 0:
                    yield ctx.comm.send(receiver, 64, tag=0)
                elif ctx.rank == receiver:
                    yield ctx.comm.recv(0, 0)
                    times["recv"] = ctx.now

            return app, times

        # rank 1 shares node 0 with rank 0; rank 2 is on node 1.
        app_local, t_local = make_app(1)
        run_world(mc, 3, app_local)
        app_remote, t_remote = make_app(2)
        run_world(mc, 3, app_remote)
        assert t_local["recv"] < t_remote["recv"]


class TestErrors:
    def test_deadlock_detected(self, mc):
        def app(ctx):
            if ctx.rank == 1:
                yield ctx.comm.recv(0, 0)  # never sent

        with pytest.raises(DeadlockError, match="MPI_Recv"):
            run_world(mc, 2, app)

    def test_send_to_invalid_rank(self, mc):
        def app(ctx):
            if ctx.rank == 0:
                yield ctx.comm.send(5, 64)

        with pytest.raises(MPIUsageError):
            run_world(mc, 2, app)

    def test_negative_size_rejected(self, mc):
        def app(ctx):
            if ctx.rank == 0:
                yield ctx.comm.send(1, -5)
            else:
                yield ctx.comm.recv(0)

        with pytest.raises(MPIUsageError):
            run_world(mc, 2, app)

    def test_unknown_request_rejected(self, mc):
        def app(ctx):
            yield "not a request"

        with pytest.raises(MPIUsageError):
            run_world(mc, 1, app)


class TestDeterminism:
    def _finish(self, seed):
        mc = single_cluster(node_count=2, cpus_per_node=1)

        def app(ctx):
            for i in range(20):
                if ctx.rank == 0:
                    yield ctx.comm.send(1, 64, tag=i)
                else:
                    yield ctx.comm.recv(0, tag=i)

        _, stats = run_world(mc, 2, app, seed=seed)
        return stats.finish_time

    def test_same_seed_same_run(self):
        assert self._finish(42) == self._finish(42)

    def test_different_seed_different_run(self):
        assert self._finish(42) != self._finish(43)
