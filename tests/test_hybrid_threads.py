"""Tests for hybrid MPI + threads support (fork-join regions, Idle Threads).

The paper's Section 1: the predominant metacomputer programming model is
"message passing, which may be combined with multithreading used within
the metahosts" — this covers the multithreading half.
"""

import pytest

from repro.analysis.patterns import IDLE_THREADS, TIME, metric_by_name
from repro.analysis.replay import analyze_run
from repro.errors import MPIUsageError, TraceError
from repro.topology.presets import single_cluster, uniform_metacomputer
from repro.trace.buffer import TraceBuffer
from repro.trace.events import OmpRegionEvent

from tests.conftest import run_app
from tests.test_sim_mpi_p2p import run_world


@pytest.fixture
def mc():
    return single_cluster(node_count=2, cpus_per_node=2, speed=2.0)


class TestForkJoinSemantics:
    def test_region_lasts_as_long_as_slowest_thread(self, mc):
        times = {}

        def app(ctx):
            # 4 threads, slowest has 0.2 ref-s; CPU speed 2 → 0.1 s wall.
            yield ctx.parallel([0.05, 0.2, 0.05, 0.05], region="loop")
            times["done"] = ctx.now

        run_world(mc, 1, app)
        assert times["done"] == pytest.approx(0.1, rel=1e-6)

    def test_balanced_team_equals_plain_compute(self, mc):
        times = {}

        def app(ctx):
            if ctx.rank == 0:
                yield ctx.parallel([0.1] * 4)
            else:
                yield ctx.compute(0.1)
            times[ctx.rank] = ctx.now

        run_world(mc, 2, app)
        assert times[0] == pytest.approx(times[1], rel=1e-6)

    def test_validation(self, mc):
        def empty(ctx):
            yield ctx.parallel([])

        with pytest.raises(MPIUsageError):
            run_world(mc, 1, empty)

        def negative(ctx):
            yield ctx.parallel([0.1, -0.1])

        with pytest.raises(MPIUsageError):
            run_world(mc, 1, negative)


class TestIdleThreadsMetric:
    def test_metric_registered_under_execution(self):
        assert metric_by_name(IDLE_THREADS).parent == "execution"

    def test_imbalanced_team_charged(self, mc):
        def app(ctx):
            with ctx.region("main"):
                # One thread does 0.2 ref-s, three do nothing:
                # idle = 4×0.1 − 0.1 = 0.3 thread-seconds (wall, speed 2).
                yield ctx.parallel([0.2, 0.0, 0.0, 0.0], region="hotloop")
            yield ctx.comm.barrier()

        result = analyze_run(run_app(mc, 2, app, seed=1))
        # Both ranks run the same region.
        assert result.metric_total(IDLE_THREADS) == pytest.approx(0.6, rel=1e-3)

    def test_balanced_team_not_charged(self, mc):
        def app(ctx):
            with ctx.region("main"):
                yield ctx.parallel([0.1] * 4)
            yield ctx.comm.barrier()

        result = analyze_run(run_app(mc, 2, app, seed=1))
        assert result.metric_total(IDLE_THREADS) == pytest.approx(0.0, abs=1e-9)

    def test_localized_to_region_callpath(self, mc):
        def app(ctx):
            with ctx.region("main"):
                yield ctx.parallel([0.2, 0.0], region="hotloop")
            yield ctx.comm.barrier()

        result = analyze_run(run_app(mc, 1, app, seed=1))
        assert result.metric_under_region(IDLE_THREADS, "hotloop") == pytest.approx(
            result.metric_total(IDLE_THREADS)
        )
        # Region wall time also shows up in the time metric.
        assert result.metric_under_region(TIME, "hotloop") > 0.09

    def test_mixed_with_mpi_wait_states(self):
        """Hybrid pattern mix: thread imbalance AND grid barrier waits."""
        mc = uniform_metacomputer(metahost_count=2, node_count=1, cpus_per_node=2)

        def app(ctx):
            with ctx.region("main"):
                work = [0.2, 0.05] if ctx.metahost_id == 0 else [0.05, 0.05]
                yield ctx.parallel(work, region="phase")
                yield ctx.comm.barrier()

        result = analyze_run(run_app(mc, 4, app, seed=2))
        assert result.metric_total(IDLE_THREADS) > 0.25
        assert result.metric_total("grid-wait-at-barrier") > 0.25


class TestTraceLayer:
    def test_buffer_validation(self):
        buf = TraceBuffer(0)
        with pytest.raises(TraceError):
            buf.omp_region(0.0, 1, nthreads=0, busy_sum=0.0, busy_max=0.0)
        with pytest.raises(TraceError):
            buf.omp_region(0.0, 1, nthreads=2, busy_sum=-1.0, busy_max=0.0)

    def test_idle_seconds_formula(self):
        from repro.analysis.instances import OmpRegionRecord

        record = OmpRegionRecord(
            cpid=0, enter=0.0, exit=1.0, nthreads=4, busy_sum=2.5, busy_max=1.0
        )
        assert record.idle_thread_seconds == pytest.approx(1.5)

    def test_event_round_trip_via_archive(self, mc):
        def app(ctx):
            with ctx.region("main"):
                yield ctx.parallel([0.01, 0.02], region="loop")
            yield ctx.comm.barrier()

        run = run_app(mc, 1, app)
        events = run.reader(0).read_trace(0)
        omp = [e for e in events if isinstance(e, OmpRegionEvent)]
        assert len(omp) == 1
        assert omp[0].nthreads == 2
