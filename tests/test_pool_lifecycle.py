"""Persistent-pool lifecycle: warm reuse, graceful shutdown, signals."""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import textwrap
import threading
import time

import pytest

from repro.errors import PoolShutdown
from repro.resilience.pool import PoolConfig, SupervisedPool


def _worker_pid(task):
    return os.getpid()


def _sleep_then_echo(task):
    time.sleep(task)
    return task


class TestPersistentReuse:
    def test_workers_stay_warm_across_runs(self):
        pool = SupervisedPool(
            _worker_pid, PoolConfig(max_workers=2, handle_signals=False),
            persistent=True,
        )
        try:
            first, report1 = pool.run([0, 1, 2, 3])
            second, report2 = pool.run([0, 1, 2, 3])
            assert report1.clean and report2.clean
            # The second run reused (at least one of) the first run's
            # worker processes instead of respawning.
            assert set(first) & set(second)
        finally:
            pool.close()

    def test_non_persistent_pool_respawns(self):
        config = PoolConfig(max_workers=1, handle_signals=False)
        first, _ = SupervisedPool(_worker_pid, config).run([0])
        second, _ = SupervisedPool(_worker_pid, config).run([0])
        assert set(first) != set(second)

    def test_close_reaps_idle_workers(self):
        pool = SupervisedPool(
            _worker_pid, PoolConfig(max_workers=2, handle_signals=False),
            persistent=True,
        )
        pids, _ = pool.run([0, 1])
        assert pool._idle  # warm workers parked
        pool.close()
        assert not pool._idle
        deadline = time.monotonic() + 10
        for pid in set(pids):
            while time.monotonic() < deadline:
                try:
                    os.kill(pid, 0)
                except ProcessLookupError:
                    break
                time.sleep(0.05)
            else:
                pytest.fail(f"worker {pid} still alive after close()")

    def test_close_is_idempotent_and_pool_reusable_before_close(self):
        pool = SupervisedPool(
            _worker_pid, PoolConfig(max_workers=1, handle_signals=False),
            persistent=True,
        )
        pool.run([0])
        pool.close()
        pool.close()
        # A closed (but not shut down) pool can still run; it just spawns anew.
        results, _ = pool.run([0])
        assert len(results) == 1
        pool.close()


class TestGracefulShutdown:
    def test_shutdown_mid_run_raises_with_partial_results(self):
        pool = SupervisedPool(
            _sleep_then_echo,
            PoolConfig(max_workers=1, handle_signals=False, drain_grace_s=0.2),
            persistent=True,
        )
        timer = threading.Timer(0.5, pool.request_shutdown, args=("test stop",))
        timer.start()
        try:
            with pytest.raises(PoolShutdown) as excinfo:
                pool.run([0.01, 30.0])
            shutdown = excinfo.value
            assert shutdown.reason == "test stop"
            assert shutdown.results.get(0) == 0.01
            assert 1 not in shutdown.results
            cancelled = shutdown.report.tasks[1].failures
            assert any("cancelled: test stop" in msg for msg in cancelled)
        finally:
            timer.cancel()
            pool.close()

    def test_shutdown_request_is_sticky(self):
        pool = SupervisedPool(
            _sleep_then_echo,
            PoolConfig(max_workers=1, handle_signals=False, drain_grace_s=0.1),
        )
        pool.request_shutdown("pre-emptive")
        with pytest.raises(PoolShutdown) as excinfo:
            pool.run([0.01])
        assert excinfo.value.reason == "pre-emptive"
        assert excinfo.value.results == {}

    def test_completed_run_does_not_raise_after_late_request(self):
        pool = SupervisedPool(
            _sleep_then_echo, PoolConfig(max_workers=1, handle_signals=False)
        )
        results, report = pool.run([0.0])
        pool.request_shutdown("after the fact")
        assert results == [0.0]
        assert report.clean

    def test_shutdown_reaps_inflight_workers(self):
        pool = SupervisedPool(
            _sleep_then_echo,
            PoolConfig(max_workers=2, handle_signals=False, drain_grace_s=0.1),
        )
        timer = threading.Timer(0.3, pool.request_shutdown)
        timer.start()
        try:
            with pytest.raises(PoolShutdown):
                pool.run([30.0, 30.0])
        finally:
            timer.cancel()
        # No orphans: multiprocessing's live-children registry is empty.
        import multiprocessing

        deadline = time.monotonic() + 10
        while multiprocessing.active_children() and time.monotonic() < deadline:
            time.sleep(0.05)
        assert not multiprocessing.active_children()


class TestSignalHandling:
    def test_sigterm_drains_and_raises_pool_shutdown(self, tmp_path):
        script = textwrap.dedent(
            """
            import sys, time
            from repro.errors import PoolShutdown
            from repro.resilience.pool import PoolConfig, SupervisedPool
            from tests.test_pool_lifecycle import _sleep_then_echo

            pool = SupervisedPool(
                _sleep_then_echo,
                PoolConfig(max_workers=1, drain_grace_s=0.2),
            )
            print("READY", flush=True)
            try:
                pool.run([60.0])
            except PoolShutdown as exc:
                print(f"SHUTDOWN {exc.reason}", flush=True)
                sys.exit(3)
            sys.exit(0)
            """
        )
        root = os.path.join(os.path.dirname(__file__), "..")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.join(root, "src"), root]
            + env.get("PYTHONPATH", "").split(os.pathsep)
        )
        proc = subprocess.Popen(
            [sys.executable, "-c", script],
            stdout=subprocess.PIPE,
            text=True,
            env=env,
        )
        try:
            assert proc.stdout.readline().strip() == "READY"
            time.sleep(0.5)  # let the task dispatch
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=30)
        except Exception:
            proc.kill()
            raise
        assert proc.returncode == 3
        assert "SHUTDOWN signal 15 (SIGTERM)" in out
