"""Property-based tests for the trace codec and severity cube."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.severity import SeverityCube
from repro.trace.encoding import decode_events, encode_events
from repro.trace.events import (
    CollExitEvent,
    EnterEvent,
    ExitEvent,
    RecvEvent,
    SendEvent,
)

times = st.floats(min_value=0.0, max_value=1e9, allow_nan=False)
region_ids = st.integers(min_value=0, max_value=2**32 - 1)
ranks = st.integers(min_value=-1, max_value=2**31 - 1)
tags = st.integers(min_value=-1, max_value=2**31 - 1)
comms = st.integers(min_value=0, max_value=2**32 - 1)
sizes = st.integers(min_value=0, max_value=2**63 - 1)

events = st.one_of(
    st.builds(EnterEvent, time=times, region=region_ids),
    st.builds(ExitEvent, time=times, region=region_ids),
    st.builds(SendEvent, time=times, dest=ranks, tag=tags, comm=comms, size=sizes),
    st.builds(RecvEvent, time=times, source=ranks, tag=tags, comm=comms, size=sizes),
    st.builds(
        CollExitEvent,
        time=times,
        region=region_ids,
        comm=comms,
        root=ranks,
        sent=sizes,
        recvd=sizes,
    ),
)


class TestCodecProperties:
    @given(rank=st.integers(min_value=0, max_value=2**32 - 1), evs=st.lists(events, max_size=60))
    @settings(max_examples=120)
    def test_round_trip_identity(self, rank, evs):
        decoded_rank, decoded = decode_events(encode_events(rank, evs))
        assert decoded_rank == rank
        assert decoded == evs

    @given(evs=st.lists(events, max_size=40))
    def test_encoding_length_is_deterministic(self, evs):
        assert encode_events(0, evs) == encode_events(0, evs)

    @given(a=st.lists(events, max_size=20), b=st.lists(events, max_size=20))
    def test_concatenation_of_payloads(self, a, b):
        """Record streams compose: decoding a+b yields the two event lists."""
        header_len = len(encode_events(0, []))
        blob_a = encode_events(0, a)
        blob_b = encode_events(0, b)
        combined = blob_a + blob_b[header_len:]
        _, decoded = decode_events(combined)
        assert decoded == a + b


cells = st.tuples(
    st.sampled_from(["m1", "m2", "m3"]),
    st.integers(min_value=0, max_value=5),
    st.integers(min_value=0, max_value=5),
    st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
)


class TestCubeProperties:
    @given(st.lists(cells, max_size=80))
    def test_total_equals_sum_of_inserts(self, inserts):
        cube = SeverityCube()
        expected = {}
        for metric, cpid, rank, value in inserts:
            cube.add(metric, cpid, rank, value)
            expected[metric] = expected.get(metric, 0.0) + value
        for metric, total in expected.items():
            assert abs(cube.total(metric) - total) < 1e-6

    @given(st.lists(cells, max_size=80))
    def test_marginals_consistent(self, inserts):
        cube = SeverityCube()
        for metric, cpid, rank, value in inserts:
            cube.add(metric, cpid, rank, value)
        for metric in cube.metrics():
            total = cube.total(metric)
            assert abs(sum(cube.by_callpath(metric).values()) - total) < 1e-6
            assert abs(sum(cube.by_rank(metric).values()) - total) < 1e-6

    @given(st.lists(cells, max_size=40), st.floats(min_value=0.0, max_value=10.0))
    def test_scale_linearity(self, inserts, factor):
        cube = SeverityCube()
        for metric, cpid, rank, value in inserts:
            cube.add(metric, cpid, rank, value)
        scaled = cube.scale(factor)
        for metric in cube.metrics():
            assert abs(scaled.total(metric) - cube.total(metric) * factor) < 1e-5

    @given(st.lists(cells, max_size=40))
    def test_copy_independence(self, inserts):
        cube = SeverityCube()
        for metric, cpid, rank, value in inserts:
            cube.add(metric, cpid, rank, value)
        snapshot = {m: cube.total(m) for m in cube.metrics()}
        clone = cube.copy()
        clone.add("extra", 0, 0, 1.0)
        for metric, total in snapshot.items():
            assert cube.total(metric) == total
        assert cube.total("extra") == 0.0
