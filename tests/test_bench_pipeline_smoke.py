"""Tier-1 smoke test for the pipeline hot-path benchmark harness.

Runs the real harness at the smallest scale (32 ranks, one coupling
interval, one repetition) and validates the ``BENCH_pipeline.json`` schema
— so a schema or harness regression is caught by the fast suite, without
the minutes-long full benchmark (``pytest -m perf benchmarks/``).
"""

import importlib.util
import json
import pathlib
import sys

import pytest

_BENCH_PATH = (
    pathlib.Path(__file__).resolve().parents[1]
    / "benchmarks"
    / "bench_pipeline_hotpath.py"
)


def _load_harness():
    spec = importlib.util.spec_from_file_location("bench_pipeline_hotpath", _BENCH_PATH)
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("bench_pipeline_hotpath", module)
    spec.loader.exec_module(module)
    return module


bench = _load_harness()


@pytest.fixture(scope="module")
def tiny_doc():
    return bench.run_pipeline_benchmark(
        factors=[1], reps=1, coupling_intervals=1, cg_iterations=4
    )


@pytest.mark.perf
class TestPipelineBenchSmoke:
    def test_document_matches_schema(self, tiny_doc):
        bench.validate_document(tiny_doc)
        assert tiny_doc["schema"] == bench.SCHEMA
        assert tiny_doc["workload"] == "scaled-experiment1"
        (row,) = tiny_doc["results"]
        assert row["factor"] == 1
        assert row["ranks"] == 32
        assert row["events"] > 0
        assert row["trace_bytes"] > 0
        assert row["matched_pairs"] > 0
        assert set(bench.STAGE_KEYS) == set(row["stages"])
        for value in row["stages"].values():
            assert value >= 0.0

    def test_json_round_trips_through_disk(self, tiny_doc, tmp_path):
        out = tmp_path / "BENCH_pipeline.json"
        bench.write_document(tiny_doc, out)
        reloaded = json.loads(out.read_text(encoding="utf-8"))
        bench.validate_document(reloaded)
        assert reloaded == json.loads(json.dumps(tiny_doc))

    def test_validation_rejects_bad_documents(self, tiny_doc):
        with pytest.raises(ValueError, match="schema"):
            bench.validate_document({"schema": "something-else", "results": []})
        with pytest.raises(ValueError, match="results"):
            bench.validate_document({"schema": bench.SCHEMA, "results": []})
        broken = json.loads(json.dumps(tiny_doc))
        del broken["results"][0]["stages"]["replay_s"]
        with pytest.raises(ValueError, match="replay_s"):
            bench.validate_document(broken)
        negative = json.loads(json.dumps(tiny_doc))
        negative["results"][0]["stages"]["decode_s"] = -1.0
        with pytest.raises(ValueError, match="decode_s"):
            bench.validate_document(negative)

    def test_cli_writes_artifact(self, tmp_path):
        out = tmp_path / "from_cli.json"
        code = bench.main(
            [
                "--factors", "1",
                "--reps", "1",
                "--intervals", "1",
                "--out", str(out),
            ]
        )
        assert code == 0
        bench.validate_document(json.loads(out.read_text(encoding="utf-8")))
