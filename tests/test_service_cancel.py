"""Deadlines, cancellation, requeue and the circuit breaker in the service.

Executor-level behaviours use gated/deadline-aware ``execute_job``
stand-ins (as in ``test_service_app.py``) so nothing here waits on a real
simulation; the breaker is driven with an injected clock so state
transitions are deterministic.
"""

from __future__ import annotations

import threading
import time

import pytest

import repro.service.app as app_module
from repro.errors import JobRejected, ServiceError, TimeBudgetExceeded
from repro.service import ServiceConfig, create_app
from repro.service.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from repro.service.store import ACCEPTED, CANCELLED, DONE, FAILED, JobStore


def _wait(predicate, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.02)
    return False


SIM = {"kind": "simulate", "experiment": "imbalance"}


class _Gate:
    """Blocks until released; cooperatively honours the job deadline."""

    def __init__(self):
        self.release = threading.Event()
        self.started = threading.Event()

    def __call__(self, spec, *, pool=None, progress=None, deadline=None):
        self.started.set()
        while not self.release.is_set():
            if deadline is not None and deadline.reason() is not None:
                raise TimeBudgetExceeded(deadline.reason())
            time.sleep(0.01)
        return {"kind": spec["kind"], "echo": spec["seed"]}, None


@pytest.fixture
def config(tmp_path):
    return ServiceConfig(
        store_path=str(tmp_path / "jobs.jsonl"),
        queue_limit=4,
        pool_workers=1,
        default_jobs=1,
        drain_grace_s=5.0,
    )


class TestBreakerUnit:
    def test_threshold_opens_and_cooldown_half_opens(self):
        clock = [0.0]
        breaker = CircuitBreaker(threshold=2, cooldown_s=10.0, clock=lambda: clock[0])
        assert breaker.allow() is None
        breaker.record_failure("one")
        assert breaker.state == CLOSED
        breaker.record_failure("two")
        assert breaker.state == OPEN
        retry = breaker.allow()
        assert retry is not None and 0 < retry <= 10.0
        # Cooldown elapses: exactly one probe admitted, the rest wait.
        clock[0] = 11.0
        assert breaker.allow() is None
        assert breaker.state == HALF_OPEN
        assert breaker.allow() is not None
        # The probe succeeds: closed, counters reset.
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.allow() is None

    def test_failed_probe_reopens_for_full_cooldown(self):
        clock = [0.0]
        breaker = CircuitBreaker(threshold=1, cooldown_s=10.0, clock=lambda: clock[0])
        breaker.record_failure("boom")
        clock[0] = 11.0
        assert breaker.allow() is None  # the probe
        breaker.record_failure("probe died")
        assert breaker.state == OPEN
        retry = breaker.allow()
        assert retry is not None and retry > 9.0

    def test_release_probe_frees_the_slot(self):
        clock = [0.0]
        breaker = CircuitBreaker(threshold=1, cooldown_s=5.0, clock=lambda: clock[0])
        breaker.record_failure("boom")
        clock[0] = 6.0
        assert breaker.allow() is None
        assert breaker.allow() is not None  # probe slot taken
        breaker.release_probe()
        assert breaker.allow() is None  # next caller becomes the probe

    def test_snapshot_is_json_shaped(self):
        breaker = CircuitBreaker(threshold=3, cooldown_s=7.0)
        snap = breaker.snapshot()
        assert snap["state"] == CLOSED
        assert snap["threshold"] == 3
        assert snap["cooldown_s"] == 7.0
        breaker.record_failure("x")
        assert breaker.snapshot()["last_failure"] == "x"


class TestCancellation:
    def test_cancel_queued_job_is_journaled_terminal(self, config, monkeypatch):
        gate = _Gate()
        monkeypatch.setattr(app_module, "execute_job", gate)
        with create_app(config) as service:
            running, _ = service.submit({**SIM, "seed": 1})
            gate.started.wait(timeout=10)
            queued, _ = service.submit({**SIM, "seed": 2})
            record, disposition = service.cancel(queued.key)
            assert disposition == "cancelled"
            assert record.status == CANCELLED
            assert record.error == "cancelled by client"
            gate.release.set()
            assert _wait(lambda: service.job(running.key).status == DONE)
            # The cancelled job never ran.
            assert service.job(queued.key).status == CANCELLED
        # And it stays cancelled across a restart: terminal states are
        # not recoverable.
        store = JobStore(config.store_path)
        try:
            assert [r.key for r in store.pending()] == []
        finally:
            store.close()

    def test_cancel_running_job_lands_within_grace(self, config, monkeypatch):
        gate = _Gate()  # never released: only the cancel can end it
        monkeypatch.setattr(app_module, "execute_job", gate)
        with create_app(config) as service:
            record, _ = service.submit({**SIM, "seed": 1})
            gate.started.wait(timeout=10)
            began = time.monotonic()
            _, disposition = service.cancel(record.key)
            assert disposition == "cancelling"
            assert _wait(lambda: service.job(record.key).status == CANCELLED)
            assert time.monotonic() - began < 10.0
            final = service.job(record.key)
            assert "TimeBudgetExceeded" in final.error
            assert "cancelled by client" in final.error

    def test_cancel_terminal_and_unknown(self, config, monkeypatch):
        gate = _Gate()
        gate.release.set()
        monkeypatch.setattr(app_module, "execute_job", gate)
        with create_app(config) as service:
            record, _ = service.submit({**SIM, "seed": 1})
            assert _wait(lambda: service.job(record.key).status == DONE)
            _, disposition = service.cancel(record.key)
            assert disposition == "terminal"
            assert service.job(record.key).status == DONE  # untouched
            with pytest.raises(ServiceError, match="no job"):
                service.cancel("feedbead")

    def test_deadline_config_cancels_wedged_job(self, config, monkeypatch):
        gate = _Gate()  # wedged: only the deadline can end it
        monkeypatch.setattr(app_module, "execute_job", gate)
        with create_app(config) as service:
            record, _ = service.submit(
                {**SIM, "seed": 1, "config": {"deadline_s": 0.5}}
            )
            began = time.monotonic()
            assert _wait(lambda: service.job(record.key).status == CANCELLED)
            assert time.monotonic() - began < 10.0
            assert "deadline of 0.5s exceeded" in service.job(record.key).error

    def test_cancelled_job_can_be_resubmitted(self, config, monkeypatch):
        gate = _Gate()
        monkeypatch.setattr(app_module, "execute_job", gate)
        with create_app(config) as service:
            running, _ = service.submit({**SIM, "seed": 1})
            gate.started.wait(timeout=10)
            queued, _ = service.submit({**SIM, "seed": 2})
            service.cancel(queued.key)
            again, disposition = service.submit({**SIM, "seed": 2})
            assert disposition == "retried"
            assert again.status == ACCEPTED
            gate.release.set()
            assert _wait(lambda: service.job(queued.key).status == DONE)


class TestRequeue:
    def test_requeue_quarantined_job(self, config, monkeypatch):
        def explode(spec, *, pool=None, progress=None, deadline=None):
            raise RuntimeError("boom")

        monkeypatch.setattr(app_module, "execute_job", explode)
        with create_app(config) as service:
            record, _ = service.submit({**SIM, "seed": 1})
            assert _wait(lambda: service.job(record.key).status == FAILED)
            healthy = _Gate()
            healthy.release.set()
            monkeypatch.setattr(app_module, "execute_job", healthy)
            requeued = service.requeue(record.key)
            assert requeued.status == ACCEPTED
            assert requeued.attempts == 0
            assert requeued.phase == "re-queued by operator"
            assert _wait(lambda: service.job(record.key).status == DONE)

    def test_requeue_rejects_nonterminal_and_unknown(self, config, monkeypatch):
        gate = _Gate()
        gate.release.set()
        monkeypatch.setattr(app_module, "execute_job", gate)
        with create_app(config) as service:
            record, _ = service.submit({**SIM, "seed": 1})
            assert _wait(lambda: service.job(record.key).status == DONE)
            with pytest.raises(ServiceError, match="only failed or cancelled"):
                service.requeue(record.key)
            with pytest.raises(ServiceError, match="no job"):
                service.requeue("feedbead")


class TestBreakerInService:
    def test_blown_deadlines_open_the_breaker(self, config, monkeypatch):
        gate = _Gate()  # wedged forever: every job blows its deadline
        monkeypatch.setattr(app_module, "execute_job", gate)
        tight = ServiceConfig(
            store_path=config.store_path,
            queue_limit=8,
            pool_workers=1,
            default_jobs=1,
            drain_grace_s=5.0,
            job_deadline_s=0.2,
            breaker_threshold=2,
            breaker_cooldown_s=60.0,
        )
        with create_app(tight) as service:
            keys = [service.submit({**SIM, "seed": s})[0].key for s in (1, 2)]
            for key in keys:
                assert _wait(lambda k=key: service.job(k).status == CANCELLED)
            assert _wait(lambda: service.breaker.state == "open")
            with pytest.raises(JobRejected) as excinfo:
                service.submit({**SIM, "seed": 3})
            assert excinfo.value.status == 503
            assert 0 < excinfo.value.retry_after_s <= 60.0
            assert service.stats()["breaker"]["state"] == "open"

    def test_client_cancel_does_not_trip_breaker(self, config, monkeypatch):
        gate = _Gate()
        monkeypatch.setattr(app_module, "execute_job", gate)
        with create_app(config) as service:
            record, _ = service.submit({**SIM, "seed": 1})
            gate.started.wait(timeout=10)
            service.cancel(record.key)
            assert _wait(lambda: service.job(record.key).status == CANCELLED)
            assert service.breaker.state == "closed"
            assert service.breaker.snapshot()["consecutive_failures"] == 0


class TestDrainRetryAfter:
    def test_drain_rejection_derives_from_remaining_grace(self, config):
        service = create_app(config).startup()
        service.shutdown()
        # Fully drained: retry-after is still bounded by the grace.
        with pytest.raises(JobRejected) as excinfo:
            service.submit({**SIM, "seed": 1})
        assert 0 < excinfo.value.retry_after_s <= config.drain_grace_s

    def test_retry_after_shrinks_as_drain_progresses(self, config, monkeypatch):
        gate = _Gate()
        monkeypatch.setattr(app_module, "execute_job", gate)
        service = create_app(config).startup()
        try:
            service.submit({**SIM, "seed": 1})
            gate.started.wait(timeout=10)
            shutdown_thread = threading.Thread(
                target=service.shutdown, daemon=True
            )
            shutdown_thread.start()
            assert _wait(lambda: not service.accepting)
            first = service.drain_retry_after_s()
            time.sleep(0.3)
            second = service.drain_retry_after_s()
            assert second < first <= config.drain_grace_s
            gate.release.set()
            shutdown_thread.join(timeout=15)
        finally:
            gate.release.set()
            service.shutdown()
