"""Tests for the tracing backend (local clock stamping)."""

import pytest

from repro.clocks.clock import ClockEnsemble, LinearClock
from repro.ids import Location, NodeId
from repro.instrument.tracer import Tracer
from repro.topology.machine import CpuSpec
from repro.topology.metacomputer import ProcessSlot
from repro.trace.events import EnterEvent, SendEvent


def _slot(rank=0, machine=0, node=0):
    return ProcessSlot(
        rank=rank, location=Location(machine, node, rank), cpu=CpuSpec("c", 2.0)
    )


def _tracer(offset=1.0):
    clocks = ClockEnsemble(
        {
            NodeId(0, 0): LinearClock(offset_s=offset),
            NodeId(0, 1): LinearClock(offset_s=-offset),
        }
    )
    return Tracer(clocks)


class TestStamping:
    def test_events_carry_local_not_true_time(self):
        tracer = _tracer(offset=1.0)
        slot = _slot()
        tracer.enter(slot, "main", 5.0)
        event = tracer.buffer(0).events[0]
        assert isinstance(event, EnterEvent)
        assert event.time == pytest.approx(6.0)  # true 5.0 + offset 1.0

    def test_different_nodes_different_stamps(self):
        tracer = _tracer(offset=1.0)
        tracer.enter(_slot(rank=0, node=0), "main", 5.0)
        tracer.enter(_slot(rank=1, node=1), "main", 5.0)
        t0 = tracer.buffer(0).events[0].time
        t1 = tracer.buffer(1).events[0].time
        assert t0 - t1 == pytest.approx(2.0)

    def test_regions_interned_across_ranks(self):
        tracer = _tracer()
        tracer.enter(_slot(rank=0), "main", 0.0)
        tracer.enter(_slot(rank=1, node=1), "main", 0.0)
        assert len(tracer.regions) == 1

    def test_send_recv_records(self):
        tracer = _tracer()
        slot = _slot()
        tracer.enter(slot, "MPI_Send", 0.0)
        tracer.send(slot, 0.1, dest_global=3, tag=7, comm_id=0, size=999)
        tracer.exit(slot, "MPI_Send", 0.2)
        events = tracer.buffer(0).events
        assert isinstance(events[1], SendEvent)
        assert events[1].dest == 3 and events[1].size == 999

    def test_coll_exit_record(self):
        tracer = _tracer()
        slot = _slot()
        tracer.enter(slot, "MPI_Barrier", 0.0)
        tracer.coll_exit(slot, 0.5, "MPI_Barrier", comm_id=0, root_global=0, sent=0, recvd=0)
        tracer.exit(slot, "MPI_Barrier", 0.5)
        events = tracer.buffer(0).events
        assert events[1].root == 0


class TestLifecycle:
    def test_finalize_creates_empty_buffers(self):
        tracer = _tracer()
        tracer.enter(_slot(0), "m", 0.0)
        tracer.exit(_slot(0), "m", 1.0)
        tracer.finalize(world_size=2)
        assert tracer.buffer(0).finalized
        assert tracer.buffer(1).finalized
        assert len(tracer.buffer(1)) == 0

    def test_require_finalized(self):
        from repro.errors import TraceError

        tracer = _tracer()
        tracer.enter(_slot(0), "m", 0.0)
        with pytest.raises(TraceError):
            tracer.require_finalized()
