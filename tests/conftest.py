"""Shared fixtures.

Expensive end-to-end runs (MetaTrace experiments, the Table 2 benchmark)
are session-scoped so the many tests that assert different facets of one
run share a single simulation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.figures import run_metatrace_experiment
from repro.experiments.table2 import run_table2
from repro.sim.runtime import MetaMPIRuntime
from repro.topology.metacomputer import Placement
from repro.topology.presets import single_cluster, uniform_metacomputer


@pytest.fixture
def rng():
    return np.random.default_rng(1234)


@pytest.fixture
def two_host_mc():
    """Two symmetric metahosts, 2 nodes × 2 CPUs each."""
    return uniform_metacomputer(metahost_count=2, node_count=2, cpus_per_node=2)


@pytest.fixture
def single_mc():
    return single_cluster(node_count=4, cpus_per_node=2)


def run_app(metacomputer, nprocs, app, seed=0, **runtime_kwargs):
    """Convenience: block placement + runtime + run."""
    placement = Placement.block(metacomputer, nprocs)
    runtime = MetaMPIRuntime(metacomputer, placement, seed=seed, **runtime_kwargs)
    return runtime.run(app)


@pytest.fixture(scope="session")
def metatrace_exp1():
    """One shared Experiment-1 (Figure 6) run + analysis."""
    return run_metatrace_experiment(figure=1, seed=11)


@pytest.fixture(scope="session")
def metatrace_exp2():
    """One shared Experiment-2 (Figure 7) run + analysis."""
    return run_metatrace_experiment(figure=2, seed=11)


@pytest.fixture(scope="session")
def table2_outcome():
    """One shared Table-2 benchmark run analyzed under all three schemes."""
    rows, run, analyses = run_table2(seed=7)
    return {"rows": rows, "run": run, "analyses": analyses}
