"""Property-based tests: random communication schedules, full pipeline.

Generates random — but deadlock-free by construction — communication
schedules, runs them through simulate → trace → archive → analyze, and
checks global invariants: every message matches, severities are bounded,
and the analysis is insensitive to archive layout.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.patterns import LATE_SENDER, P2P, TIME
from repro.analysis.replay import analyze_run
from repro.clocks.clock import ClockEnsemble
from repro.sim.runtime import MetaMPIRuntime
from repro.topology.metacomputer import Placement
from repro.topology.presets import uniform_metacomputer

SETTINGS = settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

NPROCS = 4

# One round: a list of (sender, receiver, size) with senders/receivers
# disjoint — lower rank sends, so every round is trivially deadlock-free.
rounds = st.lists(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=NPROCS - 1),
            st.integers(min_value=0, max_value=NPROCS - 1),
            st.integers(min_value=0, max_value=100_000),
        ),
        max_size=4,
    ),
    min_size=1,
    max_size=5,
)


def _schedule_app(schedule):
    """Each round: chosen senders send, receivers receive, then barrier."""

    def app(ctx):
        with ctx.region("main"):
            for round_index, exchanges in enumerate(schedule):
                clean = [
                    (src, dst, size)
                    for (src, dst, size) in exchanges
                    if src != dst
                ]
                with ctx.region("round"):
                    for order, (src, dst, size) in enumerate(clean):
                        tag = round_index * 100 + order
                        if ctx.rank == src:
                            yield ctx.comm.send(dst, size, tag=tag)
                    for order, (src, dst, size) in enumerate(clean):
                        tag = round_index * 100 + order
                        if ctx.rank == dst:
                            yield ctx.comm.recv(src, tag=tag)
                yield ctx.comm.barrier()

    return app


def _message_count(schedule):
    return sum(
        1 for exchanges in schedule for (src, dst, _s) in exchanges if src != dst
    )


class TestRandomSchedules:
    @given(schedule=rounds, seed=st.integers(min_value=0, max_value=2**16))
    @SETTINGS
    def test_every_message_matched(self, schedule, seed):
        mc = uniform_metacomputer(metahost_count=2, node_count=2, cpus_per_node=1)
        placement = Placement.block(mc, NPROCS)
        run = MetaMPIRuntime(mc, placement, seed=seed).run(_schedule_app(schedule))
        assert run.stats.p2p_messages == _message_count(schedule)
        result = analyze_run(run)
        # The analyzer sees exactly the simulated messages.
        assert result.violations.total == _message_count(schedule)

    @given(schedule=rounds, seed=st.integers(min_value=0, max_value=2**16))
    @SETTINGS
    def test_wait_states_bounded_by_op_time(self, schedule, seed):
        mc = uniform_metacomputer(metahost_count=2, node_count=2, cpus_per_node=1)
        placement = Placement.block(mc, NPROCS)
        run = MetaMPIRuntime(mc, placement, seed=seed).run(_schedule_app(schedule))
        result = analyze_run(run)
        eps = 1e-9
        assert result.metric_total(LATE_SENDER) <= result.metric_total(P2P) + eps
        assert result.metric_total(P2P) <= result.metric_total(TIME) + eps

    @given(schedule=rounds)
    @SETTINGS
    def test_true_causality_under_perfect_clocks(self, schedule):
        mc = uniform_metacomputer(metahost_count=2, node_count=2, cpus_per_node=1)
        placement = Placement.block(mc, NPROCS)
        clocks = ClockEnsemble.synchronized(placement.ranks_by_node())
        run = MetaMPIRuntime(mc, placement, seed=1, clocks=clocks).run(
            _schedule_app(schedule)
        )
        result = analyze_run(run)
        # Perfect clocks remove drift and offset, but the synchronized
        # stamps still pass through *measured* offsets, whose ping-pong
        # jitter can misplace a near-simultaneous pair by nanoseconds.
        # Any apparent violation must therefore be bounded by
        # measurement-error scale, far below the one-way link latency.
        worst = min((s.slack_s for s in result.violations.stamps), default=0.0)
        assert worst >= -5e-6
