"""The durable job store: canonicalization, content-addressed dedup, recovery."""

from __future__ import annotations

import pytest

from repro.errors import CheckpointLockError, JobValidationError
from repro.service.store import (
    ACCEPTED,
    DONE,
    FAILED,
    RUNNING,
    JobRecord,
    JobStore,
    canonical_spec,
    job_key,
)


class TestCanonicalSpec:
    def test_defaults_made_explicit(self):
        spec = canonical_spec({"experiment": "figure6"}, default_jobs=2)
        assert spec == {
            "kind": "run_experiment",
            "experiment": "figure6",
            "seed": 11,  # figure6's committed default seed
            "jobs": 2,
            "config": {},
        }

    def test_equivalent_submissions_share_a_key(self):
        implicit = canonical_spec({"experiment": "figure6"}, default_jobs=2)
        explicit = canonical_spec(
            {
                "config": {},
                "jobs": 2,
                "seed": 11,
                "kind": "run_experiment",
                "experiment": "figure6",
            },
            default_jobs=1,
        )
        assert job_key(implicit) == job_key(explicit)

    def test_different_seed_is_different_work(self):
        a = canonical_spec({"experiment": "figure6", "seed": 1})
        b = canonical_spec({"experiment": "figure6", "seed": 2})
        assert job_key(a) != job_key(b)

    def test_config_affects_identity(self):
        a = canonical_spec(
            {"kind": "analyze", "experiment": "figure7", "config": {"timeout": 60}}
        )
        b = canonical_spec({"kind": "analyze", "experiment": "figure7"})
        assert job_key(a) != job_key(b)

    @pytest.mark.parametrize(
        "raw",
        [
            "not a mapping",
            {"experiment": "figure6", "bogus": 1},
            {"kind": "nope", "experiment": "figure6"},
            {"kind": "run_experiment", "experiment": "figure99"},
            {"kind": "analyze", "experiment": "table2"},
            {"kind": "simulate", "experiment": "figure6"},
            {"experiment": ""},
            {"experiment": "figure6", "seed": "eleven"},
            {"experiment": "figure6", "seed": True},
            {"experiment": "figure6", "jobs": -1},
            {"experiment": "figure6", "config": "x"},
            {"experiment": "figure6", "config": {"coupling_intervals": 3}},
            {"kind": "analyze", "experiment": "figure6", "config": {"timeout": 0}},
            {"kind": "simulate", "experiment": "imbalance", "config": {"ranks": 1}},
        ],
    )
    def test_malformed_submissions_rejected(self, raw):
        with pytest.raises(JobValidationError):
            canonical_spec(raw)

    def test_timeline_config_keys_validate(self):
        spec = canonical_spec(
            {
                "kind": "analyze",
                "experiment": "figure6",
                "config": {"timeline": True, "window_s": 2.0, "stride_s": 0.5,
                           "bounded": True},
            }
        )
        assert spec["config"]["timeline"] is True
        for bad in (
            {"timeline": "yes"},
            {"window_s": 0},
            {"stride_s": -0.5},
            {"bounded": 1},
        ):
            with pytest.raises(JobValidationError):
                canonical_spec(
                    {"kind": "analyze", "experiment": "figure6", "config": bad}
                )

    def test_analyze_and_simulate_whitelists(self):
        analyze = canonical_spec(
            {
                "kind": "analyze",
                "experiment": "figure7",
                "config": {"coupling_intervals": 2, "verify_archive": True},
            }
        )
        assert analyze["config"] == {"coupling_intervals": 2, "verify_archive": True}
        simulate = canonical_spec(
            {
                "kind": "simulate",
                "experiment": "imbalance",
                "config": {"ranks": 4, "metahosts": 2, "iterations": 3},
            }
        )
        assert simulate["seed"] == 0  # no committed default: falls back to 0


class TestRequestCanonicalization:
    """An AnalysisRequest is a first-class job config: it canonicalizes to
    its defaults-omitted dict form and dedupes against the plain-JSON
    submission that means the same work."""

    def test_request_config_equals_plain_dict(self):
        from repro.analysis.request import AnalysisRequest

        as_request = canonical_spec(
            {
                "kind": "analyze",
                "experiment": "figure6",
                "seed": 1,
                "config": AnalysisRequest(timeline=True, window_s=2.0),
            }
        )
        as_dict = canonical_spec(
            {
                "kind": "analyze",
                "experiment": "figure6",
                "seed": 1,
                "config": {"timeline": True, "window_s": 2.0},
            }
        )
        assert as_request == as_dict
        assert job_key(as_request) == job_key(as_dict)

    def test_all_defaults_request_equals_empty_config(self):
        from repro.analysis.request import AnalysisRequest

        with_request = canonical_spec(
            {"kind": "analyze", "experiment": "figure6",
             "config": AnalysisRequest()}
        )
        without = canonical_spec({"kind": "analyze", "experiment": "figure6"})
        assert job_key(with_request) == job_key(without)
        assert with_request["config"] == {}

    def test_request_jobs_lift_into_spec(self):
        from repro.analysis.request import AnalysisRequest

        spec = canonical_spec(
            {"kind": "analyze", "experiment": "figure6",
             "config": AnalysisRequest(jobs=4)},
            default_jobs=1,
        )
        assert spec["jobs"] == 4
        assert "jobs" not in spec["config"]

    def test_request_jobs_conflict_rejected(self):
        from repro.analysis.request import AnalysisRequest

        with pytest.raises(JobValidationError, match="conflicts"):
            canonical_spec(
                {"kind": "analyze", "experiment": "figure6", "jobs": 2,
                 "config": AnalysisRequest(jobs=4)}
            )
        # Agreeing values are not a conflict.
        spec = canonical_spec(
            {"kind": "analyze", "experiment": "figure6", "jobs": 4,
             "config": AnalysisRequest(jobs=4)}
        )
        assert spec["jobs"] == 4


class TestJobRecord:
    def test_payload_round_trip(self):
        record = JobRecord(
            key="abc",
            seq=3,
            spec={"kind": "simulate", "experiment": "imbalance"},
            status=DONE,
            attempts=2,
            submitted_at=1.5,
            started_at=2.0,
            finished_at=4.0,
            result={"integrity_ok": True},
            execution={"workers": 2},
        )
        assert JobRecord.from_payload(record.to_payload()) == record

    def test_summary_omits_result(self):
        record = JobRecord(
            key="abc", seq=1, spec={"kind": "analyze", "experiment": "figure6"},
            status=DONE, result={"text": "x" * 10000},
        )
        summary = record.summary()
        assert "result" not in summary
        assert summary["status"] == DONE
        assert summary["experiment"] == "figure6"


class TestJobStore:
    def _record(self, key, seq, status=ACCEPTED):
        return JobRecord(
            key=key, seq=seq, status=status,
            spec={"kind": "simulate", "experiment": "imbalance", "seed": seq},
        )

    def test_save_get_and_ordering(self, tmp_path):
        with JobStore(str(tmp_path / "jobs.jsonl")) as store:
            store.save(self._record("b", 2))
            store.save(self._record("a", 1))
            assert [r.key for r in store.records()] == ["a", "b"]
            assert store.get("a").seq == 1
            assert store.get("missing") is None
            assert store.next_seq() == 3

    def test_state_survives_reopen(self, tmp_path):
        path = str(tmp_path / "jobs.jsonl")
        with JobStore(path) as store:
            store.save(self._record("done", 1, status=DONE))
            store.save(self._record("failed", 2, status=FAILED))
            store.save(self._record("queued", 3, status=ACCEPTED))
            store.save(self._record("inflight", 4, status=RUNNING))
        with JobStore(path) as reopened:
            assert len(reopened) == 4
            # Recovery set: accepted + running, in submission order.
            assert [r.key for r in reopened.pending()] == ["queued", "inflight"]

    def test_single_writer_enforced(self, tmp_path):
        path = str(tmp_path / "jobs.jsonl")
        with JobStore(path):
            with pytest.raises(CheckpointLockError):
                JobStore(path)
        JobStore(path).close()  # released on close

    def test_foreign_journal_cells_ignored(self, tmp_path):
        from repro.resilience.checkpoint import CheckpointJournal

        path = str(tmp_path / "jobs.jsonl")
        with CheckpointJournal(path) as journal:
            journal.record({"experiment": "table2", "seed": 7}, {"text": "..."})
        with JobStore(path) as store:
            assert len(store) == 0
            store.save(self._record("a", 1))
        # The foreign cell is preserved alongside job cells.
        with CheckpointJournal(path) as journal:
            assert journal.get({"experiment": "table2", "seed": 7}) == {"text": "..."}
