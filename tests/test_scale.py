"""Large-world stress tests (marked slow)."""

import pytest

from repro.analysis.patterns import LATE_SENDER, WAIT_AT_NXN
from repro.analysis.replay import analyze_run
from repro.sim.runtime import MetaMPIRuntime
from repro.topology.metacomputer import Placement
from repro.topology.presets import uniform_metacomputer

pytestmark = pytest.mark.slow


class TestLargeWorlds:
    def test_128_rank_pipeline(self):
        """128 ranks across 4 metahosts: full pipeline stays consistent."""
        mc = uniform_metacomputer(metahost_count=4, node_count=16, cpus_per_node=2)
        placement = Placement.block(mc, 128)

        def app(ctx):
            succ = (ctx.rank + 1) % ctx.size
            pred = (ctx.rank - 1) % ctx.size
            with ctx.region("main"):
                for _ in range(3):
                    with ctx.region("work"):
                        yield ctx.compute(0.002 * (1 + ctx.rank % 7))
                    with ctx.region("halo"):
                        yield ctx.comm.sendrecv(
                            dest=succ, send_size=2048, send_tag=1,
                            source=pred, recv_tag=1,
                        )
                    yield ctx.comm.allreduce(16)

        run = MetaMPIRuntime(mc, placement, seed=17).run(app)
        assert run.stats.p2p_messages == 128 * 3
        assert run.archive_outcome.partial_archive_count == 4

        result = analyze_run(run)
        assert result.violations.total == 128 * 3
        # Work modulation creates both p2p and collective waits.
        assert result.metric_total(LATE_SENDER) > 0
        assert result.metric_total(WAIT_AT_NXN) > 0
        # Severity never exceeds total time.
        assert result.metric_total(LATE_SENDER) <= result.metric_total("time")

    def test_full_viola_208_cpus(self):
        """Fill every CPU of the simulated VIOLA testbed.

        CAESAR 32×2 + FH-BRS 6×4 + FZJ-XD1 60×2 = 208 CPUs.
        """
        from repro.topology.presets import viola_testbed

        mc = viola_testbed()
        placement = Placement.block(mc, mc.total_cpus)
        assert placement.size == 208

        def app(ctx):
            yield ctx.compute(0.001)
            yield ctx.comm.barrier()

        run = MetaMPIRuntime(mc, placement, seed=23).run(app)
        result = analyze_run(run)
        # Grid barrier waiting exists (spanning barrier), and the slowest
        # entrant defines the sync point for 231 waiters.
        assert result.metric_total("grid-wait-at-barrier") > 0
        assert len(result.timelines) == 208
