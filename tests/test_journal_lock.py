"""Single-writer discipline of the checkpoint journal (advisory fcntl lock)."""

from __future__ import annotations

import os
import subprocess
import sys
import textwrap

import pytest

from repro.errors import CheckpointLockError
from repro.resilience.checkpoint import CheckpointJournal


class TestExclusiveOpen:
    def test_second_exclusive_writer_fails_fast(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        with CheckpointJournal(path, exclusive=True):
            with pytest.raises(CheckpointLockError) as excinfo:
                CheckpointJournal(path, exclusive=True)
            assert excinfo.value.path == path
            assert excinfo.value.holder == str(os.getpid())
            assert "already has a writer" in str(excinfo.value)

    def test_close_releases_the_lock(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        first = CheckpointJournal(path, exclusive=True)
        first.close()
        with CheckpointJournal(path, exclusive=True) as second:
            assert second.get({"a": 1}) is None

    def test_close_is_idempotent(self, tmp_path):
        journal = CheckpointJournal(str(tmp_path / "j.jsonl"), exclusive=True)
        journal.close()
        journal.close()


class TestLazyLock:
    def test_two_lazy_journals_can_open(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        a = CheckpointJournal(path)
        b = CheckpointJournal(path)
        a.close()
        b.close()

    def test_second_writer_fails_on_first_record(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        with CheckpointJournal(path) as a, CheckpointJournal(path) as b:
            a.record({"cell": 1}, "one")
            with pytest.raises(CheckpointLockError):
                b.record({"cell": 2}, "two")
            # The store was not corrupted by the failed writer.
            assert a.get({"cell": 1}) == "one"

    def test_pure_readers_never_lock(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        with CheckpointJournal(path, exclusive=True) as writer:
            writer.record({"cell": 1}, "one")
            reader = CheckpointJournal(path)
            assert reader.get({"cell": 1}) == "one"
            assert len(reader.cells()) == 1
            reader.close()

    def test_writer_can_reacquire_after_contender_closes(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        a = CheckpointJournal(path, exclusive=True)
        a.record({"cell": 1}, "one")
        a.close()
        with CheckpointJournal(path) as b:
            b.record({"cell": 2}, "two")
            assert b.get({"cell": 1}) == "one"


class TestCrossProcess:
    def test_contention_against_another_process(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        script = textwrap.dedent(
            """
            import os, sys, time
            from repro.resilience.checkpoint import CheckpointJournal
            journal = CheckpointJournal(sys.argv[1], exclusive=True)
            print(os.getpid(), flush=True)
            time.sleep(30)
            """
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.join(os.path.dirname(__file__), "..", "src")]
            + env.get("PYTHONPATH", "").split(os.pathsep)
        )
        holder = subprocess.Popen(
            [sys.executable, "-c", script, path],
            stdout=subprocess.PIPE,
            text=True,
            env=env,
        )
        try:
            holder_pid = holder.stdout.readline().strip()
            assert holder_pid
            with pytest.raises(CheckpointLockError) as excinfo:
                CheckpointJournal(path, exclusive=True)
            assert excinfo.value.holder == holder_pid
        finally:
            holder.kill()
            holder.wait(timeout=10)
        # The dead holder's lock is released by the kernel: we can write now.
        with CheckpointJournal(path, exclusive=True) as journal:
            journal.record({"cell": 1}, "one")
