"""Tests for event records and the region registry."""

import pytest

from repro.errors import TraceError
from repro.trace.events import (
    CollExitEvent,
    EnterEvent,
    EventKind,
    ExitEvent,
    RecvEvent,
    SendEvent,
)
from repro.trace.regions import (
    RECEIVE_REGIONS,
    RegionRegistry,
    is_mpi_region,
)


class TestEvents:
    def test_kinds_are_distinct(self):
        kinds = {
            EnterEvent(0, 0).kind,
            ExitEvent(0, 0).kind,
            SendEvent(0, 0, 0, 0, 0).kind,
            RecvEvent(0, 0, 0, 0, 0).kind,
            CollExitEvent(0, 0, 0, 0, 0, 0).kind,
        }
        assert len(kinds) == 5
        assert all(isinstance(k, EventKind) for k in kinds)

    def test_events_are_immutable(self):
        event = EnterEvent(1.0, 2)
        with pytest.raises(AttributeError):
            event.time = 5.0  # type: ignore[misc]

    def test_equality(self):
        assert SendEvent(1.0, 2, 3, 4, 5) == SendEvent(1.0, 2, 3, 4, 5)


class TestRegionRegistry:
    def test_register_is_idempotent(self):
        reg = RegionRegistry()
        a = reg.register("cgiteration")
        b = reg.register("cgiteration")
        assert a == b
        assert len(reg) == 1

    def test_ids_are_dense(self):
        reg = RegionRegistry()
        ids = [reg.register(name) for name in ("a", "b", "c")]
        assert ids == [0, 1, 2]

    def test_name_lookup(self):
        reg = RegionRegistry()
        rid = reg.register("main")
        assert reg.name_of(rid) == "main"
        assert reg.id_of("main") == rid

    def test_unknown_lookups_raise(self):
        reg = RegionRegistry()
        with pytest.raises(TraceError):
            reg.id_of("nope")
        with pytest.raises(TraceError):
            reg.name_of(5)

    def test_empty_name_rejected(self):
        with pytest.raises(TraceError):
            RegionRegistry().register("")

    def test_list_round_trip(self):
        reg = RegionRegistry()
        for name in ("main", "MPI_Send", "cgiteration"):
            reg.register(name)
        restored = RegionRegistry.from_list(reg.to_list())
        assert restored.to_list() == reg.to_list()
        assert restored.id_of("MPI_Send") == reg.id_of("MPI_Send")

    def test_contains(self):
        reg = RegionRegistry()
        reg.register("x")
        assert "x" in reg
        assert "y" not in reg


class TestClassification:
    def test_mpi_region_detection(self):
        assert is_mpi_region("MPI_Send")
        assert not is_mpi_region("cgiteration")

    def test_receive_regions_cover_blocking_completions(self):
        assert "MPI_Recv" in RECEIVE_REGIONS
        assert "MPI_Wait" in RECEIVE_REGIONS
        assert "MPI_Sendrecv" in RECEIVE_REGIONS
        assert "MPI_Isend" not in RECEIVE_REGIONS
