"""Tests for MPI_Comm_split."""

import pytest

from repro.errors import MPIUsageError
from repro.topology.presets import single_cluster
from tests.conftest import run_app
from tests.test_sim_mpi_p2p import run_world


@pytest.fixture
def mc():
    return single_cluster(node_count=4, cpus_per_node=2)


class TestSplit:
    def test_partitions_by_color(self, mc):
        seen = {}

        def app(ctx):
            sub = yield ctx.comm.split(color=ctx.rank % 2, key=0)
            seen[ctx.rank] = (sub.rank, sub.size, sub.name)
            yield sub.barrier()

        run_world(mc, 4, app)
        # Even ranks 0,2 → one comm; odd ranks 1,3 → another.
        assert seen[0][:2] == (0, 2)
        assert seen[2][:2] == (1, 2)
        assert seen[1][:2] == (0, 2)
        assert seen[3][:2] == (1, 2)
        assert seen[0][2] != seen[1][2]  # distinct communicators

    def test_key_orders_members(self, mc):
        seen = {}

        def app(ctx):
            # Reverse ordering: higher old rank gets lower key.
            sub = yield ctx.comm.split(color=0, key=ctx.size - ctx.rank)
            seen[ctx.rank] = sub.rank

        run_world(mc, 3, app)
        assert seen == {0: 2, 1: 1, 2: 0}

    def test_undefined_color_gets_none(self, mc):
        seen = {}

        def app(ctx):
            sub = yield ctx.comm.split(color=None if ctx.rank == 0 else 7)
            seen[ctx.rank] = sub
            if sub is not None:
                yield sub.barrier()

        run_world(mc, 3, app)
        assert seen[0] is None
        assert seen[1] is not None and seen[1].size == 2

    def test_split_communicator_usable_for_p2p(self, mc):
        got = {}

        def app(ctx):
            sub = yield ctx.comm.split(color=ctx.rank // 2, key=0)
            if sub.rank == 0:
                yield sub.send(1, 64, tag=5, data=f"grp{ctx.rank // 2}")
            else:
                msg = yield sub.recv(0, 5)
                got[ctx.rank] = msg.data

        run_world(mc, 4, app)
        assert got == {1: "grp0", 3: "grp1"}

    def test_split_synchronizes_like_collective(self, mc):
        after = {}

        def app(ctx):
            yield ctx.compute(0.1 * ctx.rank)
            sub = yield ctx.comm.split(color=0)
            after[ctx.rank] = ctx.now
            yield sub.barrier()

        run_world(mc, 3, app)
        # Nobody finishes the split before the last caller entered (0.2 s).
        assert all(t >= 0.2 for t in after.values())

    def test_repeated_splits_get_fresh_names(self, mc):
        names = []

        def app(ctx):
            for _ in range(2):
                sub = yield ctx.comm.split(color=0)
                if ctx.rank == 0:
                    names.append(sub.name)

        run_world(mc, 2, app)
        assert len(set(names)) == 2

    def test_split_on_foreign_comm_rejected(self, mc):
        import numpy as np

        from repro.sim.mpi import World
        from repro.topology.metacomputer import Placement

        world = World(mc, Placement.block(mc, 3), rng=np.random.default_rng(0))
        world.new_communicator("pair", [1, 2])

        def app(ctx):
            sub = ctx.get_comm("pair")
            if ctx.rank == 0:
                # Rank 0 is not a member; forging a request must fail.
                from repro.sim.mpi import SplitReq

                yield SplitReq(world.communicator("pair").id, 0, 0)
            elif sub is not None:
                yield sub.split(color=0)

        world.launch(app, seed=0)
        with pytest.raises(MPIUsageError):
            world.run()

    def test_split_is_traced(self, mc):
        def app(ctx):
            sub = yield ctx.comm.split(color=0)
            yield sub.barrier()

        run = run_app(mc, 2, app)
        assert "MPI_Comm_split" in run.definitions.regions.names()


class TestSplitArchival:
    def test_split_comms_recorded_in_definitions(self, mc):
        def app(ctx):
            sub = yield ctx.comm.split(color=ctx.rank % 2)
            yield sub.barrier()

        run = run_app(mc, 4, app)
        names = {name for name, _ranks in run.definitions.communicators.values()}
        assert any("split" in name for name in names)
        # Both color groups archived with their members.
        split_comms = [
            ranks
            for name, ranks in run.definitions.communicators.values()
            if "split" in name
        ]
        assert sorted(map(tuple, split_comms)) == [(0, 2), (1, 3)]

    def test_split_trace_predictable(self, mc):
        """A trace containing a split can still be skeletonized."""
        from repro.analysis.replay import analyze_run
        from repro.predict import predict_run, skeleton_from_run
        from repro.topology.metacomputer import Placement

        def app(ctx):
            with ctx.region("main"):
                yield ctx.compute(0.02 * (1 + ctx.rank))
                sub = yield ctx.comm.split(color=ctx.rank % 2)
                yield sub.allreduce(64)

        run = run_app(mc, 4, app, seed=6)
        direct = analyze_run(run)
        predicted = predict_run(
            skeleton_from_run(run, direct), mc, Placement.block(mc, 4), seed=7
        )
        # The split replays as a barrier; the subcomm allreduce replays
        # exactly (its communicator is archived).
        assert predicted.result.metric_total("wait-at-nxn") > 0.0
