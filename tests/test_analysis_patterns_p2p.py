"""Tests for point-to-point wait-state patterns (synthetic pairs)."""

import pytest

from repro.analysis.instances import MPIOpInstance, RecvRecord, SendRecord
from repro.analysis.matching import MatchedPair
from repro.analysis.patterns.point2point import (
    GridLateReceiverPattern,
    GridLateSenderPattern,
    LateReceiverPattern,
    LateSenderPattern,
    WrongOrderPattern,
    default_p2p_patterns,
    late_receiver_wait,
    late_sender_wait,
)
from repro.ids import Location


def _pair(
    send_enter,
    send_exit,
    recv_enter,
    recv_exit,
    sender_machine=0,
    receiver_machine=0,
    send_time=None,
    comm=0,
    receiver_rank=1,
):
    send_time = send_time if send_time is not None else send_enter + 0.001
    send_op = MPIOpInstance(
        rank=0, region=0, op_name="MPI_Send", cpid=10,
        enter=send_enter, exit=send_exit,
    )
    recv_op = MPIOpInstance(
        rank=receiver_rank, region=1, op_name="MPI_Recv", cpid=20,
        enter=recv_enter, exit=recv_exit,
    )
    send = SendRecord(send_time, receiver_rank, 0, comm, 64)
    recv = RecvRecord(recv_exit, 0, 0, comm, 64)
    return MatchedPair(
        sender_rank=0,
        sender_location=Location(sender_machine, 0, 0),
        send_op=send_op,
        send=send,
        receiver_rank=receiver_rank,
        receiver_location=Location(receiver_machine, 0, receiver_rank),
        recv_op=recv_op,
        recv=recv,
    )


class TestLateSenderWait:
    def test_receiver_posted_early_waits(self):
        # Recv enters at 0, send enters at 3: receiver waited 3 seconds.
        pair = _pair(send_enter=3.0, send_exit=3.1, recv_enter=0.0, recv_exit=3.2)
        assert late_sender_wait(pair) == pytest.approx(3.0)

    def test_sender_early_no_wait(self):
        pair = _pair(send_enter=0.0, send_exit=0.1, recv_enter=1.0, recv_exit=1.1)
        assert late_sender_wait(pair) == 0.0

    def test_wait_clipped_to_region_duration(self):
        # Send entered after the receive already finished (clock noise);
        # the wait cannot exceed the receive's own duration.
        pair = _pair(send_enter=10.0, send_exit=10.1, recv_enter=0.0, recv_exit=2.0)
        assert late_sender_wait(pair) == pytest.approx(2.0)


class TestLateReceiverWait:
    def test_sender_blocked_until_receive_posted(self):
        pair = _pair(send_enter=0.0, send_exit=5.1, recv_enter=5.0, recv_exit=5.2)
        assert late_receiver_wait(pair) == pytest.approx(5.0)

    def test_eager_send_contributes_nothing(self):
        # Eager sends exit immediately, so the clip removes any wait.
        pair = _pair(send_enter=0.0, send_exit=0.001, recv_enter=5.0, recv_exit=5.2)
        assert late_receiver_wait(pair) == pytest.approx(0.001)


class TestPatternContributions:
    def test_late_sender_located_at_receiver(self):
        pair = _pair(send_enter=2.0, send_exit=2.1, recv_enter=0.0, recv_exit=2.2)
        hits = LateSenderPattern().contributions(pair)
        assert len(hits) == 1
        assert hits[0].rank == 1  # receiver
        assert hits[0].cpid == 20  # receive call path
        assert hits[0].value == pytest.approx(2.0)

    def test_late_sender_no_hit_without_wait(self):
        pair = _pair(send_enter=0.0, send_exit=0.1, recv_enter=5.0, recv_exit=5.1)
        assert LateSenderPattern().contributions(pair) == []

    def test_grid_variant_requires_machine_crossing(self):
        same = _pair(send_enter=2.0, send_exit=2.1, recv_enter=0.0, recv_exit=2.2)
        cross = _pair(
            send_enter=2.0, send_exit=2.1, recv_enter=0.0, recv_exit=2.2,
            receiver_machine=1,
        )
        assert GridLateSenderPattern().contributions(same) == []
        hits = GridLateSenderPattern().contributions(cross)
        assert hits and hits[0].value == pytest.approx(2.0)

    def test_late_receiver_located_at_sender(self):
        pair = _pair(send_enter=0.0, send_exit=4.0, recv_enter=3.0, recv_exit=4.1)
        hits = LateReceiverPattern().contributions(pair)
        assert hits[0].rank == 0
        assert hits[0].cpid == 10
        assert hits[0].value == pytest.approx(3.0)

    def test_grid_late_receiver(self):
        pair = _pair(
            send_enter=0.0, send_exit=4.0, recv_enter=3.0, recv_exit=4.1,
            receiver_machine=1,
        )
        assert GridLateReceiverPattern().contributions(pair)

    def test_default_catalogue_is_fresh(self):
        a = default_p2p_patterns()
        b = default_p2p_patterns()
        assert {p.name for p in a} == {p.name for p in b}
        assert all(x is not y for x, y in zip(a, b))


class TestWrongOrder:
    def test_detects_overtaking(self):
        pattern = WrongOrderPattern()
        # First retrieved message was sent at t=5.
        first = _pair(
            send_enter=5.0, send_exit=5.1, recv_enter=0.0, recv_exit=5.2,
            send_time=5.05,
        )
        assert pattern.contributions(first) == []
        # Second retrieved message was sent EARLIER (t=1): wrong order.
        second = _pair(
            send_enter=1.0, send_exit=1.1, recv_enter=5.3, recv_exit=6.0,
            send_time=1.05,
        )
        # Receiver still waited? recv_enter 5.3 > send_enter 1.0 → no wait,
        # so no severity despite wrong order.
        assert pattern.contributions(second) == []

    def test_wrong_order_with_wait_attributed(self):
        pattern = WrongOrderPattern()
        first = _pair(
            send_enter=5.0, send_exit=5.1, recv_enter=0.0, recv_exit=5.2,
            send_time=5.05,
        )
        pattern.contributions(first)
        # Earlier-sent message consumed later AND the receiver waited for it.
        second = _pair(
            send_enter=6.0, send_exit=6.1, recv_enter=5.3, recv_exit=6.2,
            send_time=4.0,
        )
        hits = pattern.contributions(second)
        assert len(hits) == 1
        assert hits[0].value == pytest.approx(0.7)

    def test_state_is_per_receiver_and_comm(self):
        pattern = WrongOrderPattern()
        pattern.contributions(
            _pair(send_enter=5.0, send_exit=5.1, recv_enter=0.0, recv_exit=5.2,
                  send_time=5.0)
        )
        other_comm = _pair(
            send_enter=6.0, send_exit=6.1, recv_enter=5.3, recv_exit=6.2,
            send_time=1.0, comm=1,
        )
        assert pattern.contributions(other_comm) == []
