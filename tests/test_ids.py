"""Tests for locations and node identifiers."""

from repro.ids import Location, NodeId, node_of


class TestLocation:
    def test_tuple_round_trip(self):
        loc = Location(1, 2, 3, 0)
        assert loc.as_tuple() == (1, 2, 3, 0)
        assert tuple(loc) == (1, 2, 3, 0)

    def test_default_thread_is_zero(self):
        assert Location(0, 0, 5).thread == 0

    def test_ordering_is_hierarchical(self):
        a = Location(0, 9, 9, 9)
        b = Location(1, 0, 0, 0)
        assert a < b

    def test_same_machine_predicate(self):
        a = Location(0, 0, 0)
        b = Location(0, 5, 7)
        c = Location(1, 0, 0)
        assert a.same_machine(b)
        assert not a.same_machine(c)

    def test_same_node_requires_same_machine(self):
        a = Location(0, 1, 0)
        b = Location(1, 1, 1)
        assert not a.same_node(b)
        assert a.same_node(Location(0, 1, 9))

    def test_hashable_and_equal(self):
        assert Location(1, 2, 3) == Location(1, 2, 3)
        assert len({Location(1, 2, 3), Location(1, 2, 3)}) == 1


class TestNodeId:
    def test_node_of_location(self):
        assert node_of(Location(2, 4, 17)) == NodeId(2, 4)

    def test_ordering(self):
        assert NodeId(0, 5) < NodeId(1, 0)
        assert NodeId(1, 0) < NodeId(1, 1)

    def test_str_forms(self):
        assert str(NodeId(1, 2)) == "m1.n2"
        assert str(Location(1, 2, 3, 0)) == "m1.n2.p3.t0"
