"""End-to-end tests of the replay analyzer on simulated runs."""

import pytest

from repro.analysis.patterns import (
    BARRIER_COMPLETION,
    COMMUNICATION,
    EXECUTION,
    GRID_LATE_SENDER,
    GRID_WAIT_AT_BARRIER,
    LATE_RECEIVER,
    LATE_SENDER,
    MPI,
    P2P,
    SYNCHRONIZATION,
    TIME,
    WAIT_AT_BARRIER,
    WAIT_AT_NXN,
)
from repro.analysis.replay import ReplayAnalyzer, analyze_run
from repro.apps.imbalance import (
    make_barrier_imbalance_app,
    make_imbalance_app,
    make_master_worker_app,
    make_nxn_imbalance_app,
)
from repro.clocks.clock import ClockEnsemble
from repro.errors import AnalysisError
from repro.sim.runtime import MetaMPIRuntime
from repro.sim.transfer import SimParams
from repro.topology.metacomputer import Placement
from repro.topology.presets import single_cluster, uniform_metacomputer

from tests.conftest import run_app


@pytest.fixture
def single_mc():
    return single_cluster(node_count=4, cpus_per_node=1)


@pytest.fixture
def multi_mc():
    return uniform_metacomputer(metahost_count=2, node_count=2, cpus_per_node=1)


class TestBaseMetrics:
    def test_time_accounts_whole_run(self, single_mc):
        work = {0: 0.1, 1: 0.1, 2: 0.1, 3: 0.1}
        run = run_app(single_mc, 4, make_barrier_imbalance_app(work))
        result = analyze_run(run)
        # Sum of per-rank wall times ≈ 4 × 0.05 s (speed factor 1, work 0.1
        # at speed 1.0 → 0.1 s each) plus barrier costs.
        assert result.metric_total(TIME) == pytest.approx(result.total_time, rel=1e-6)
        assert result.metric_total(EXECUTION) == result.metric_total(TIME)

    def test_metric_hierarchy_is_monotone(self, single_mc):
        work = {r: 0.02 * (r + 1) for r in range(4)}
        run = run_app(single_mc, 4, make_imbalance_app(work, iterations=3))
        result = analyze_run(run)
        assert result.metric_total(TIME) >= result.metric_total(MPI)
        assert result.metric_total(MPI) >= result.metric_total(COMMUNICATION)
        assert result.metric_total(COMMUNICATION) >= result.metric_total(P2P)
        assert result.metric_total(P2P) >= result.metric_total(LATE_SENDER)
        assert result.metric_total(MPI) >= result.metric_total(SYNCHRONIZATION)

    def test_pct_is_relative_to_time(self, single_mc):
        work = {r: 0.05 for r in range(4)}
        run = run_app(single_mc, 4, make_barrier_imbalance_app(work))
        result = analyze_run(run)
        assert result.pct(TIME) == pytest.approx(100.0)


class TestPatternDetectionEndToEnd:
    def test_late_sender_from_imbalanced_ring(self, single_mc):
        # Rank 1 computes 10× longer; its ring successor (rank 2) waits.
        work = {0: 0.01, 1: 0.1, 2: 0.01, 3: 0.01}
        run = run_app(single_mc, 4, make_imbalance_app(work, iterations=2))
        result = analyze_run(run)
        ls = result.cube.by_rank(LATE_SENDER)
        assert result.metric_total(LATE_SENDER) > 0.05
        assert ls.get(2, 0.0) > 0.04  # successor of the slow rank

    def test_wait_at_barrier_from_imbalance(self, single_mc):
        work = {0: 0.2, 1: 0.01, 2: 0.01, 3: 0.01}
        run = run_app(single_mc, 4, make_barrier_imbalance_app(work))
        result = analyze_run(run)
        wab = result.cube.by_rank(WAIT_AT_BARRIER)
        assert all(wab.get(r, 0) > 0.15 for r in (1, 2, 3))
        assert wab.get(0, 0.0) < 0.01
        assert result.metric_total(BARRIER_COMPLETION) >= 0.0

    def test_wait_at_nxn_from_imbalance(self, single_mc):
        work = {0: 0.2, 1: 0.01, 2: 0.01, 3: 0.01}
        run = run_app(single_mc, 4, make_nxn_imbalance_app(work))
        result = analyze_run(run)
        assert result.metric_total(WAIT_AT_NXN) > 0.4  # 3 ranks × ~0.19 s

    def test_grid_variants_zero_on_single_metahost(self, single_mc):
        work = {0: 0.1, 1: 0.01, 2: 0.01, 3: 0.01}
        run = run_app(single_mc, 4, make_barrier_imbalance_app(work))
        result = analyze_run(run)
        assert result.metric_total(GRID_WAIT_AT_BARRIER) == 0.0
        assert result.metric_total(GRID_LATE_SENDER) == 0.0

    def test_grid_variants_fire_across_metahosts(self, multi_mc):
        # Ranks 0,1 on metahost 0; ranks 2,3 on metahost 1.
        work = {0: 0.2, 1: 0.2, 2: 0.01, 3: 0.01}
        run = run_app(multi_mc, 4, make_barrier_imbalance_app(work))
        result = analyze_run(run)
        assert result.metric_total(GRID_WAIT_AT_BARRIER) > 0.3
        # Grid severity is a subset of the plain severity.
        assert result.metric_total(GRID_WAIT_AT_BARRIER) <= result.metric_total(
            WAIT_AT_BARRIER
        )

    def test_late_receiver_from_rendezvous(self, single_mc):
        params = SimParams(eager_threshold_bytes=1024)

        def app(ctx):
            with ctx.region("main"):
                if ctx.rank == 0:
                    yield ctx.comm.send(1, 10**6, tag=0)  # rendezvous
                elif ctx.rank == 1:
                    yield ctx.compute(0.3)
                    yield ctx.comm.recv(0, 0)

        run = run_app(single_mc, 2, app, params=params)
        result = analyze_run(run)
        assert result.metric_total(LATE_RECEIVER) > 0.25
        assert result.cube.by_rank(LATE_RECEIVER).get(0, 0.0) > 0.25

    def test_master_worker_late_senders(self, single_mc):
        work = {1: 0.05, 2: 0.1, 3: 0.15}
        run = run_app(single_mc, 4, make_master_worker_app(work))
        result = analyze_run(run)
        # Rank 0 waits on the slowest producer chain.
        assert result.cube.by_rank(LATE_SENDER).get(0, 0.0) > 0.1


class TestSeverityLocalization:
    def test_late_sender_at_ring_callpath(self, single_mc):
        work = {0: 0.01, 1: 0.1, 2: 0.01, 3: 0.01}
        run = run_app(single_mc, 4, make_imbalance_app(work))
        result = analyze_run(run)
        top = result.top_callpaths(LATE_SENDER, n=1)
        assert top
        path, value = top[0]
        assert "ring" in path and "MPI_Sendrecv" in path

    def test_callpath_value_lookup(self, single_mc):
        work = {0: 0.01, 1: 0.1, 2: 0.01, 3: 0.01}
        run = run_app(single_mc, 4, make_imbalance_app(work))
        result = analyze_run(run)
        direct = result.callpath_value(LATE_SENDER, "main", "ring", "MPI_Sendrecv")
        assert direct == pytest.approx(result.metric_total(LATE_SENDER))
        assert result.metric_in_region(LATE_SENDER, "MPI_Sendrecv") == pytest.approx(
            direct
        )
        assert result.metric_under_region(LATE_SENDER, "ring") == pytest.approx(direct)


class TestReplayProperties:
    def test_perfect_clocks_no_violations(self, multi_mc):
        placement = Placement.block(multi_mc, 4)
        clocks = ClockEnsemble.synchronized(placement.ranks_by_node())
        runtime = MetaMPIRuntime(multi_mc, placement, seed=0, clocks=clocks)
        work = {r: 0.01 * r for r in range(4)}
        run = runtime.run(make_imbalance_app(work, iterations=3))
        result = analyze_run(run)
        assert result.violations.violations == 0

    def test_replay_traffic_smaller_than_merge(self, multi_mc):
        work = {r: 0.01 for r in range(4)}
        run = run_app(multi_mc, 4, make_imbalance_app(work, iterations=10))
        result = analyze_run(run)
        assert result.traffic.replay_metadata_bytes > 0
        assert result.traffic.merged_copy_bytes > result.traffic.replay_metadata_bytes
        assert result.traffic.saving_factor > 1.0

    def test_scheme_recorded(self, single_mc):
        from repro.clocks.sync import FlatSingleOffset

        work = {r: 0.01 for r in range(2)}
        run = run_app(single_mc, 2, make_imbalance_app(work))
        result = analyze_run(run, scheme=FlatSingleOffset())
        assert result.scheme_name == "single-flat-offset"

    def test_empty_readers_rejected(self):
        with pytest.raises(AnalysisError):
            ReplayAnalyzer({})

    def test_missing_machine_reader_rejected(self, multi_mc):
        work = {r: 0.01 for r in range(4)}
        run = run_app(multi_mc, 4, make_imbalance_app(work))
        readers = {0: run.reader(0)}  # machine 1 missing
        with pytest.raises(AnalysisError, match="no archive reader"):
            ReplayAnalyzer(readers).analyze()

    def test_deterministic_analysis(self, multi_mc):
        work = {r: 0.02 * r for r in range(4)}
        run = run_app(multi_mc, 4, make_imbalance_app(work, iterations=2))
        a = analyze_run(run)
        b = analyze_run(run)
        assert a.cube.data == b.cube.data
