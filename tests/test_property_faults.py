"""Property-based tests for degraded-mode replay under trace damage.

For *any* truncation point in any rank's trace file, the degraded replay
must (a) never raise, in particular never surface an
:class:`~repro.errors.EncodingError`, (b) analyze every rank whose trace
still decodes completely, and (c) report the damaged rank's salvage
fraction honestly.
"""

import warnings

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.replay import ReplayAnalyzer
from repro.errors import PartialTraceWarning
from repro.fs.filesystem import MountNamespace, SimFileSystem
from repro.sim.runtime import MetaMPIRuntime
from repro.topology.metacomputer import Placement
from repro.topology.presets import uniform_metacomputer
from repro.trace.archive import ArchiveReader, salvage_checked, trace_filename
from repro.trace.encoding import salvage_events

NPROCS = 4
_CACHE = {}


def _app(ctx):
    with ctx.region("main"):
        for round_index in range(2):
            with ctx.region("step"):
                yield ctx.compute(0.001 * (1 + ctx.rank))
                if ctx.rank == 0:
                    yield ctx.comm.send(1, 10_000, tag=round_index)
                elif ctx.rank == 1:
                    yield ctx.comm.recv(0, tag=round_index)
            yield ctx.comm.barrier()


def _base_run():
    """One shared clean run; every example re-archives its files."""
    if "run" not in _CACHE:
        mc = uniform_metacomputer(metahost_count=2, node_count=2, cpus_per_node=1)
        placement = Placement.block(mc, NPROCS)
        run = MetaMPIRuntime(mc, placement, seed=7).run(_app)
        files = {}
        for machine in run.machines_used:
            ns = run.namespaces[machine]
            files[machine] = {
                name: ns.read_file(f"{run.archive_path}/{name}")
                for name in ns.list_dir(run.archive_path)
            }
        _CACHE["run"] = run
        _CACHE["files"] = files
    return _CACHE["run"], _CACHE["files"]


def _rebuilt_readers(files, path, victim, cut):
    """Fresh per-machine archives with the victim's trace cut at *cut* bytes."""
    readers = {}
    truncated = None
    for machine, contents in files.items():
        ns = MountNamespace({"/": SimFileSystem(f"fs-{machine}")})
        ns.create_dir(path)
        for name, blob in contents.items():
            if name == trace_filename(victim):
                blob = blob[: min(cut, len(blob))]
                truncated = blob
            ns.write_file(f"{path}/{name}", blob)
        readers[machine] = ArchiveReader(ns, path)
    return readers, truncated


class TestTruncationSalvage:
    @given(
        victim=st.integers(min_value=0, max_value=NPROCS - 1),
        cut=st.integers(min_value=0, max_value=20_000),
    )
    @settings(max_examples=30, deadline=None)
    def test_degraded_replay_survives_any_truncation(self, victim, cut):
        run, files = _base_run()
        readers, truncated = _rebuilt_readers(
            files, run.archive_path, victim, cut
        )
        assert truncated is not None

        salvaged = salvage_events(truncated)  # must never raise
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", PartialTraceWarning)
            result = ReplayAnalyzer(readers, degraded=True).analyze()

        intact = [r for r in range(NPROCS) if r != victim]
        # A cut on an exact record boundary decodes cleanly but leaves
        # regions open — such a trace must be excluded, not analyzed.
        # The archive manifest catches even the cuts the grammar cannot
        # see (e.g. a header-only remnant), so usability is judged by the
        # checksum-aware salvage the analyzer itself uses.
        entry = None
        for reader in readers.values():
            entry = reader.manifest_entry(victim) or entry
        checked = salvage_checked(truncated, entry)
        victim_usable = (
            checked.complete and checked.rank == victim and checked.balanced
        )
        expected = sorted(intact + [victim]) if victim_usable else intact
        assert result.analyzed_ranks == expected
        assert result.degraded

        record = result.completeness[victim]
        assert record.analyzed == victim_usable
        assert 0.0 <= record.completeness <= 1.0
        if not victim_usable:
            assert result.completeness[victim].error
            # Salvaged events are a clean prefix: count matches the salvage.
            assert record.events == len(salvaged.events)

    @given(cut=st.integers(min_value=0, max_value=20_000))
    @settings(max_examples=30, deadline=None)
    def test_salvage_never_raises_and_is_prefix(self, cut):
        run, files = _base_run()
        machine = run.machines_used[0]
        rank = run.placement.slots[0].rank
        blob = files[machine][trace_filename(rank)]
        whole = salvage_events(blob)
        assert whole.complete and whole.rank == rank
        part = salvage_events(blob[: min(cut, len(blob))])
        assert part.events == whole.events[: len(part.events)]
        assert part.bytes_decoded <= len(blob)
