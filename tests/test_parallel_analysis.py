"""Serial/parallel analysis equivalence and the sharding machinery.

The contract under test: for every ``jobs`` value, ``analyze`` produces a
result *bit-identical* to the serial analyzer — same severity cube (float
for float), same call-path ids, same clock-condition stamps, same rendered
report bytes — in both strict and degraded mode.
"""

from __future__ import annotations

import warnings

import pytest

from repro.analysis.parallel import plan_shards, resolve_jobs
from repro.api import AnalysisRequest, analyze
from repro.apps.imbalance import make_imbalance_app
from repro.apps.metatrace import make_metatrace_app
from repro.errors import AnalysisError, PartialTraceWarning
from repro.experiments.configs import experiment1
from repro.faults import FaultPlan, TraceCorruption, TraceTruncation
from repro.report import render_analysis
from repro.sim.runtime import MetaMPIRuntime
from repro.topology.presets import uniform_metacomputer

from tests.conftest import run_app


def assert_identical(serial, parallel):
    """Every observable facet of the two results must be bit-identical."""
    assert serial.cube.data == parallel.cube.data
    assert [
        (p.cpid, p.parent, p.region, p.depth) for p in serial.callpaths.all_paths()
    ] == [
        (p.cpid, p.parent, p.region, p.depth) for p in parallel.callpaths.all_paths()
    ]
    assert serial.violations.stamps == parallel.violations.stamps
    assert vars(serial.traffic) == vars(parallel.traffic)
    assert serial.total_time == parallel.total_time
    assert serial.scheme_name == parallel.scheme_name
    assert serial.grid_pairs.data == parallel.grid_pairs.data
    assert list(serial.timelines) == list(parallel.timelines)
    assert serial.completeness == parallel.completeness
    assert render_analysis(serial) == render_analysis(parallel)


class TestResolveJobs:
    def test_none_and_one_are_serial(self):
        assert resolve_jobs(None) == 1
        assert resolve_jobs(1) == 1

    def test_explicit_count_passes_through(self):
        assert resolve_jobs(5) == 5

    def test_zero_means_all_cores(self):
        assert resolve_jobs(0) >= 1

    def test_negative_rejected(self):
        with pytest.raises(AnalysisError):
            resolve_jobs(-2)


class TestPlanShards:
    def test_contiguous_cover(self):
        ranks = list(range(10))
        machine_of = {r: 0 for r in ranks}
        shards = plan_shards(ranks, machine_of, 3)
        assert 1 < len(shards) <= 3
        flat = [r for shard in shards for r in shard]
        assert flat == ranks  # every rank exactly once, ascending

    def test_single_job_single_shard(self):
        shards = plan_shards([3, 1, 2], {1: 0, 2: 0, 3: 0}, 1)
        assert shards == [(1, 2, 3)]

    def test_empty_world(self):
        assert plan_shards([], {}, 4) == []

    def test_more_jobs_than_ranks(self):
        shards = plan_shards([0, 1, 2], {0: 0, 1: 0, 2: 1}, 8)
        assert [r for shard in shards for r in shard] == [0, 1, 2]
        assert all(shard for shard in shards)

    def test_cut_snaps_to_machine_boundary(self):
        # Machine boundary at rank 7, ideal midpoint cut at 5: the planner
        # prefers the boundary so each shard reads one metahost's traces.
        machine_of = {r: (0 if r < 7 else 1) for r in range(10)}
        shards = plan_shards(list(range(10)), machine_of, 2)
        assert shards == [tuple(range(7)), (7, 8, 9)]

    def test_deterministic(self):
        ranks = list(range(32))
        machine_of = {r: r // 11 for r in ranks}
        assert plan_shards(ranks, machine_of, 4) == plan_shards(
            ranks, machine_of, 4
        )


class TestStrictEquivalence:
    @pytest.fixture(scope="class")
    def small_run(self):
        mc = uniform_metacomputer(metahost_count=2, node_count=2, cpus_per_node=2)
        work = {r: 0.005 * (1 + r % 3) for r in range(8)}
        return run_app(mc, 8, make_imbalance_app(work, iterations=3), seed=5)

    @pytest.mark.parametrize("jobs", [2, 3, 4, 8])
    def test_bit_identical_to_serial(self, small_run, jobs):
        serial = analyze(small_run)
        parallel = analyze(small_run, AnalysisRequest(jobs=jobs))
        assert_identical(serial, parallel)

    def test_jobs_one_uses_serial_path(self, small_run):
        assert_identical(analyze(small_run), analyze(small_run, AnalysisRequest(jobs=1)))


@pytest.mark.slow
class TestGoldenFigure6:
    def test_figure6_seed1_jobs4_byte_identical(self):
        """The acceptance criterion: figure6 --seed 1, jobs 1 vs jobs 4."""
        metacomputer, placement, config = experiment1()
        runtime = MetaMPIRuntime(
            metacomputer, placement, seed=1, subcomms=config.subcomms()
        )
        run = runtime.run(make_metatrace_app(config))
        serial = analyze(run, AnalysisRequest(jobs=1))
        parallel = analyze(run, AnalysisRequest(jobs=4))
        assert_identical(serial, parallel)
        assert render_analysis(serial).encode() == render_analysis(parallel).encode()


class TestDegradedEquivalence:
    @pytest.fixture(scope="class")
    def damaged_run(self):
        """A run whose upper ranks lose trace data (truncation + corruption)."""
        mc = uniform_metacomputer(metahost_count=2, node_count=2, cpus_per_node=2)
        work = {r: 0.005 * (1 + r % 3) for r in range(8)}
        plan = FaultPlan(
            name="damage",
            seed=3,
            specs=(
                TraceTruncation(rank=6, keep_fraction=0.5),
                TraceCorruption(rank=3, at_fraction=0.5, length=8),
            ),
        )
        return run_app(
            mc, 8, make_imbalance_app(work, iterations=3), seed=3, fault_plan=plan
        )

    def _analyze_with_warnings(self, run, jobs):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            result = analyze(run, AnalysisRequest(degraded=True, jobs=jobs))
        return result, [(w.category, str(w.message)) for w in caught]

    @pytest.mark.parametrize("jobs", [2, 4])
    def test_degraded_bit_identical(self, damaged_run, jobs):
        serial, serial_warnings = self._analyze_with_warnings(damaged_run, None)
        parallel, parallel_warnings = self._analyze_with_warnings(damaged_run, jobs)
        assert_identical(serial, parallel)
        assert serial.excluded_ranks == parallel.excluded_ranks

    @pytest.mark.parametrize("jobs", [2, 4])
    def test_worker_warnings_reach_parent(self, damaged_run, jobs):
        """PartialTraceWarnings raised inside workers must surface in the
        parent process, in the serial analyzer's order (the fault
        experiment counts them)."""
        serial, serial_warnings = self._analyze_with_warnings(damaged_run, None)
        parallel, parallel_warnings = self._analyze_with_warnings(damaged_run, jobs)
        assert serial_warnings == parallel_warnings
        assert any(
            issubclass(cat, PartialTraceWarning) for cat, _ in parallel_warnings
        )


class TestShardAddressableReads:
    def test_trace_shard_snapshot(self):
        mc = uniform_metacomputer(metahost_count=2, node_count=2, cpus_per_node=2)
        work = {r: 0.004 for r in range(8)}
        run = run_app(mc, 8, make_imbalance_app(work, iterations=2), seed=2)
        shard = run.trace_shard([1, 5, 6])
        assert shard.ranks == (1, 5, 6)
        assert sorted(shard.blobs) == [1, 5, 6]
        assert shard.missing == {}
        # Blobs are the on-archive bytes, byte for byte.
        for rank in shard.ranks:
            machine = run.definitions.machine_of(rank)
            assert shard.blobs[rank] == run.reader(machine).read_trace_blob(rank)
