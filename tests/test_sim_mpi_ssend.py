"""Tests for synchronous sends (MPI_Ssend) and send-to-self semantics."""

import pytest

from repro.analysis.patterns import LATE_RECEIVER
from repro.analysis.replay import analyze_run
from repro.topology.presets import single_cluster
from tests.conftest import run_app
from tests.test_sim_mpi_p2p import run_world


@pytest.fixture
def mc():
    return single_cluster(node_count=2, cpus_per_node=2)


class TestSsend:
    def test_small_ssend_still_blocks_for_receiver(self, mc):
        """Synchronous mode forces rendezvous even below the threshold."""
        times = {}

        def app(ctx):
            if ctx.rank == 0:
                yield ctx.comm.ssend(1, 64, tag=0)  # tiny but synchronous
                times["send_done"] = ctx.now
            else:
                yield ctx.compute(0.5)
                yield ctx.comm.recv(0, 0)

        run_world(mc, 2, app)
        assert times["send_done"] > 0.5

    def test_plain_send_same_size_does_not_block(self, mc):
        times = {}

        def app(ctx):
            if ctx.rank == 0:
                yield ctx.comm.send(1, 64, tag=0)
                times["send_done"] = ctx.now
            else:
                yield ctx.compute(0.5)
                yield ctx.comm.recv(0, 0)

        run_world(mc, 2, app)
        assert times["send_done"] < 0.01

    def test_ssend_traced_as_own_region(self, mc):
        def app(ctx):
            with ctx.region("main"):
                if ctx.rank == 0:
                    yield ctx.comm.ssend(1, 64, tag=0)
                elif ctx.rank == 1:
                    yield ctx.comm.recv(0, 0)
            yield ctx.comm.barrier()

        run = run_app(mc, 2, app)
        assert "MPI_Ssend" in run.definitions.regions.names()

    def test_ssend_produces_late_receiver(self, mc):
        def app(ctx):
            with ctx.region("main"):
                if ctx.rank == 0:
                    yield ctx.comm.ssend(1, 64, tag=0)
                elif ctx.rank == 1:
                    yield ctx.compute(0.3)
                    yield ctx.comm.recv(0, 0)
            yield ctx.comm.barrier()

        result = analyze_run(run_app(mc, 2, app))
        assert result.metric_total(LATE_RECEIVER) > 0.25
        # Attributed at the sender's MPI_Ssend call path.
        top_path, _ = result.top_callpaths(LATE_RECEIVER, 1)[0]
        assert "MPI_Ssend" in top_path

    def test_ssend_delivers_data(self, mc):
        got = {}

        def app(ctx):
            if ctx.rank == 0:
                yield ctx.comm.ssend(1, 64, tag=3, data="sync")
            else:
                msg = yield ctx.comm.recv(0, 3)
                got["data"] = msg.data

        run_world(mc, 2, app)
        assert got["data"] == "sync"


class TestSendToSelf:
    def test_self_message_via_nonblocking(self, mc):
        """isend-to-self completes once the matching local recv is posted."""
        got = {}

        def app(ctx):
            if ctx.rank == 0:
                handle = yield ctx.comm.isend(0, 64, tag=1, data="loop")
                msg = yield ctx.comm.recv(0, 1)
                yield ctx.comm.wait(handle)
                got["data"] = msg.data
            else:
                yield ctx.compute(0.001)

        run_world(mc, 2, app)
        assert got["data"] == "loop"
