"""Tests for non-blocking point-to-point operations."""

import pytest

from repro.errors import MPIUsageError
from repro.sim.transfer import SimParams
from repro.topology.presets import single_cluster
from tests.test_sim_mpi_p2p import run_world


@pytest.fixture
def mc():
    return single_cluster(node_count=4, cpus_per_node=2)


class TestIsendIrecv:
    def test_isend_wait_round_trip(self, mc):
        got = {}

        def app(ctx):
            if ctx.rank == 0:
                handle = yield ctx.comm.isend(1, 256, tag=4, data="hello")
                yield ctx.comm.wait(handle)
            else:
                handle = yield ctx.comm.irecv(0, 4)
                msg = yield ctx.comm.wait(handle)
                got["msg"] = msg

        run_world(mc, 2, app)
        assert got["msg"].data == "hello"

    def test_isend_overlaps_compute(self, mc):
        times = {}

        def app(ctx):
            if ctx.rank == 0:
                handle = yield ctx.comm.isend(1, 256, tag=0)
                yield ctx.compute(0.2)
                yield ctx.comm.wait(handle)
                times["send_done"] = ctx.now
            else:
                yield ctx.comm.recv(0, 0)
                times["recv_done"] = ctx.now

        run_world(mc, 2, app)
        # The eager isend completed during the overlap window, and the
        # receiver got the message long before the sender's wait returned.
        assert times["recv_done"] < times["send_done"]

    def test_irecv_posted_before_send(self, mc):
        got = {}

        def app(ctx):
            if ctx.rank == 0:
                handle = yield ctx.comm.irecv(1, 2)
                msg = yield ctx.comm.wait(handle)
                got["msg"] = msg
            else:
                yield ctx.compute(0.1)
                yield ctx.comm.send(0, 64, tag=2, data="late")

        run_world(mc, 2, app)
        assert got["msg"].data == "late"

    def test_wait_on_already_complete_handle(self, mc):
        times = {}

        def app(ctx):
            if ctx.rank == 0:
                yield ctx.comm.send(1, 64, tag=0, data="x")
            else:
                handle = yield ctx.comm.irecv(0, 0)
                yield ctx.compute(0.5)  # message certainly arrived by now
                msg = yield ctx.comm.wait(handle)
                times["wait_done"] = ctx.now
                assert msg.data == "x"

        run_world(mc, 2, app)
        assert times["wait_done"] == pytest.approx(0.5, abs=0.01)

    def test_rendezvous_isend_completes_at_transfer(self, mc):
        params = SimParams(eager_threshold_bytes=512)
        times = {}

        def app(ctx):
            if ctx.rank == 0:
                handle = yield ctx.comm.isend(1, 10**6, tag=0)
                yield ctx.comm.wait(handle)
                times["send_done"] = ctx.now
            else:
                yield ctx.compute(0.3)
                yield ctx.comm.recv(0, 0)

        run_world(mc, 2, app, params=params)
        assert times["send_done"] > 0.3


class TestWaitall:
    def test_waitall_gathers_all_messages(self, mc):
        got = []

        def app(ctx):
            if ctx.rank == 0:
                handles = []
                for src in (1, 2, 3):
                    handles.append((yield ctx.comm.irecv(src, tag=src)))
                results = yield ctx.comm.waitall(handles)
                got.extend(m.data for m in results)
            else:
                yield ctx.compute(0.01 * ctx.rank)
                yield ctx.comm.send(0, 64, tag=ctx.rank, data=ctx.rank)

        run_world(mc, 4, app)
        assert got == [1, 2, 3]

    def test_waitall_empty_list(self, mc):
        done = []

        def app(ctx):
            results = yield ctx.comm.waitall([])
            done.append(results)

        run_world(mc, 1, app)
        assert done == [[]]

    def test_waitall_mixes_sends_and_recvs(self, mc):
        def app(ctx):
            other = 1 - ctx.rank
            h1 = yield ctx.comm.isend(other, 128, tag=0)
            h2 = yield ctx.comm.irecv(other, tag=0)
            yield ctx.comm.waitall([h1, h2])

        run_world(mc, 2, app)

    def test_double_wait_rejected(self, mc):
        def app(ctx):
            if ctx.rank == 0:
                handle = yield ctx.comm.irecv(1, 0)
                # Wait on the same pending handle twice in parallel is a
                # usage error.
                yield ctx.comm.waitall([handle, handle])
            else:
                yield ctx.compute(0.1)
                yield ctx.comm.send(0, 64, tag=0)

        with pytest.raises(MPIUsageError):
            run_world(mc, 2, app)
