"""Tests for experiment archives (definitions, sync data, local traces)."""

import numpy as np
import pytest

from repro.clocks.clock import ClockEnsemble
from repro.clocks.sync import collect_sync_data
from repro.errors import ArchiveError
from repro.fs.filesystem import MountNamespace, SimFileSystem
from repro.ids import Location, NodeId
from repro.topology.presets import single_cluster
from repro.trace.archive import (
    DEFINITIONS_FILE,
    ArchiveReader,
    ArchiveWriter,
    Definitions,
    trace_filename,
)
from repro.trace.events import EnterEvent, ExitEvent, SendEvent
from repro.trace.regions import RegionRegistry


def _definitions():
    regions = RegionRegistry()
    regions.register("main")
    regions.register("MPI_Send")
    return Definitions(
        machine_names=["alpha", "beta"],
        locations={0: Location(0, 0, 0), 1: Location(1, 0, 1)},
        regions=regions,
        communicators={0: ("world", (0, 1))},
    )


def _namespace():
    ns = MountNamespace({"/work": SimFileSystem("fs")})
    ns.create_dir("/work/exp")
    return ns


def _sync_data():
    mc = single_cluster(node_count=2, cpus_per_node=1)
    rng = np.random.default_rng(0)
    nodes = {0: [NodeId(0, 0), NodeId(0, 1)]}
    clocks = ClockEnsemble.random(nodes[0], rng)
    return collect_sync_data(mc, nodes, clocks, NodeId(0, 0), 0.0, 1.0, rng)


class TestDefinitions:
    def test_json_round_trip(self):
        defs = _definitions()
        restored = Definitions.from_json(defs.to_json())
        assert restored.machine_names == defs.machine_names
        assert restored.locations == defs.locations
        assert restored.regions.to_list() == defs.regions.to_list()
        assert restored.communicators == defs.communicators

    def test_machine_of(self):
        defs = _definitions()
        assert defs.machine_of(1) == 1
        with pytest.raises(ArchiveError):
            defs.machine_of(9)

    def test_ranks_of_machine(self):
        defs = _definitions()
        assert defs.ranks_of_machine(0) == [0]
        assert defs.ranks_of_machine(5) == []

    def test_malformed_json_rejected(self):
        with pytest.raises(ArchiveError):
            Definitions.from_json("{not json")
        with pytest.raises(ArchiveError):
            Definitions.from_json("{}")


class TestWriterReader:
    def test_round_trip(self):
        ns = _namespace()
        writer = ArchiveWriter(ns, "/work/exp")
        defs = _definitions()
        writer.write_definitions(defs)
        writer.write_sync_data(_sync_data())
        events = [EnterEvent(0.0, 0), SendEvent(0.5, 1, 0, 0, 64), ExitEvent(1.0, 0)]
        size = writer.write_trace(0, events)
        assert size > 0

        reader = ArchiveReader(ns, "/work/exp")
        assert reader.definitions().machine_names == ["alpha", "beta"]
        assert reader.read_trace(0) == events
        assert reader.sync_data().master_node == NodeId(0, 0)

    def test_writer_requires_existing_directory(self):
        ns = MountNamespace({"/work": SimFileSystem("fs")})
        with pytest.raises(ArchiveError):
            ArchiveWriter(ns, "/work/missing")

    def test_reader_requires_existing_directory(self):
        ns = MountNamespace({"/work": SimFileSystem("fs")})
        with pytest.raises(ArchiveError):
            ArchiveReader(ns, "/work/missing")

    def test_available_ranks(self):
        ns = _namespace()
        writer = ArchiveWriter(ns, "/work/exp")
        for rank in (0, 3, 17):
            writer.write_trace(rank, [])
        reader = ArchiveReader(ns, "/work/exp")
        assert reader.available_ranks() == [0, 3, 17]
        assert reader.has_trace(3)
        assert not reader.has_trace(5)

    def test_rank_mismatch_detected(self):
        ns = _namespace()
        writer = ArchiveWriter(ns, "/work/exp")
        writer.write_trace(0, [])
        # Corrupt: copy rank 0's file to rank 1's name.
        blob = ns.read_file(f"/work/exp/{trace_filename(0)}")
        ns.write_file(f"/work/exp/{trace_filename(1)}", blob)
        reader = ArchiveReader(ns, "/work/exp")
        with pytest.raises(ArchiveError, match="claims rank"):
            reader.read_trace(1)

    def test_definitions_cached(self):
        ns = _namespace()
        writer = ArchiveWriter(ns, "/work/exp")
        writer.write_definitions(_definitions())
        reader = ArchiveReader(ns, "/work/exp")
        assert reader.definitions() is reader.definitions()

    def test_filenames(self):
        assert trace_filename(12) == "trace.12.dat"
        assert DEFINITIONS_FILE == "definitions.json"
