"""Tests for collective cost models (synchronization semantics)."""

import pytest

from repro.errors import MPIUsageError
from repro.sim import collectives as coll
from repro.sim.transfer import SimParams
from repro.topology.presets import single_cluster, uniform_metacomputer

PARAMS = SimParams()


def _locations(mc, n):
    from repro.topology.metacomputer import Placement

    placement = Placement.block(mc, n)
    return {r: placement.location(r) for r in range(n)}


@pytest.fixture
def single():
    return single_cluster(node_count=4, cpus_per_node=2)


@pytest.fixture
def multi():
    return uniform_metacomputer(metahost_count=2, node_count=2, cpus_per_node=2)


def _exits(op, enters, mc, n, root=0, size=0):
    return coll.collective_exit_times(
        op, enters, root, size, mc, _locations(mc, n), PARAMS
    ).exit_times


class TestBarrier:
    def test_nobody_leaves_before_last_entry(self, single):
        enters = {0: 0.0, 1: 5.0, 2: 1.0, 3: 2.0}
        exits = _exits(coll.BARRIER, enters, single, 4)
        assert all(t >= 5.0 for t in exits.values())

    def test_everyone_leaves_together(self, single):
        enters = {0: 0.0, 1: 5.0, 2: 1.0, 3: 2.0}
        exits = _exits(coll.BARRIER, enters, single, 4)
        assert len(set(exits.values())) == 1


class TestNxN:
    @pytest.mark.parametrize("op", [coll.ALLREDUCE, coll.ALLGATHER, coll.ALLTOALL])
    def test_inherent_synchronization(self, single, op):
        enters = {0: 0.0, 1: 3.0, 2: 0.5, 3: 0.5}
        exits = _exits(op, enters, single, 4, size=1024)
        assert all(t >= 3.0 for t in exits.values())

    def test_alltoall_costs_more_than_allreduce(self, single):
        enters = {r: 0.0 for r in range(4)}
        a2a = _exits(coll.ALLTOALL, enters, single, 4, size=10**6)
        ar = _exits(coll.ALLREDUCE, enters, single, 4, size=10**6)
        assert a2a[0] > ar[0]

    def test_external_links_dominate_cost(self, single, multi):
        local = _exits(
            coll.ALLREDUCE, {r: 0.0 for r in range(4)}, single, 4, size=1024
        )
        spanning = _exits(
            coll.ALLREDUCE, {r: 0.0 for r in range(8)}, multi, 8, size=1024
        )
        # The multi-metahost communicator pays external latency per stage.
        assert max(spanning.values()) > max(local.values())


class TestRooted:
    def test_bcast_nonroot_waits_for_root(self, single):
        enters = {0: 10.0, 1: 0.0, 2: 0.0, 3: 0.0}
        exits = _exits(coll.BCAST, enters, single, 4, root=0, size=64)
        assert all(exits[r] > 10.0 for r in (1, 2, 3))

    def test_bcast_early_root_leaves_quickly(self, single):
        enters = {0: 0.0, 1: 50.0, 2: 50.0, 3: 50.0}
        exits = _exits(coll.BCAST, enters, single, 4, root=0, size=64)
        assert exits[0] < 1.0  # root does not wait for receivers

    def test_reduce_root_waits_for_last(self, single):
        enters = {0: 0.0, 1: 7.0, 2: 0.0, 3: 0.0}
        exits = _exits(coll.REDUCE, enters, single, 4, root=0, size=64)
        assert exits[0] > 7.0
        assert exits[2] < 1.0  # early contributor leaves after injecting

    def test_missing_root_rejected(self, single):
        with pytest.raises(MPIUsageError):
            _exits(coll.BCAST, {0: 0.0, 1: 0.0}, single, 2, root=5)


class TestInvariantsAndBytes:
    def test_exit_never_before_entry(self, multi):
        enters = {r: float(r) for r in range(8)}
        for op in coll.ALL_COLLECTIVES:
            exits = _exits(op, enters, multi, 8, root=3, size=4096)
            for r, enter in enters.items():
                assert exits[r] >= enter

    def test_unknown_op_rejected(self, single):
        with pytest.raises(MPIUsageError):
            _exits("MPI_Magic", {0: 0.0}, single, 1)

    def test_empty_communicator_rejected(self, single):
        with pytest.raises(MPIUsageError):
            _exits(coll.BARRIER, {}, single, 1)

    def test_bytes_moved_barrier(self):
        assert coll.bytes_moved(coll.BARRIER, 100, 4, 0, 0) == (0, 0)

    def test_bytes_moved_allreduce(self):
        sent, recvd = coll.bytes_moved(coll.ALLREDUCE, 100, 4, 1, 0)
        assert sent == 100 and recvd == 300

    def test_bytes_moved_bcast(self):
        assert coll.bytes_moved(coll.BCAST, 100, 4, 0, 0) == (300, 0)
        assert coll.bytes_moved(coll.BCAST, 100, 4, 2, 0) == (0, 100)

    def test_bytes_moved_gather(self):
        assert coll.bytes_moved(coll.GATHER, 100, 4, 0, 0) == (0, 300)
        assert coll.bytes_moved(coll.GATHER, 100, 4, 3, 0) == (100, 0)
