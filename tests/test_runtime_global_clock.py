"""Tests for hardware-synchronized metahosts (has_global_clock)."""

import pytest

from repro.analysis.replay import analyze_run
from repro.apps.imbalance import make_imbalance_app
from repro.clocks.sync import HierarchicalInterpolation
from repro.sim.runtime import MetaMPIRuntime
from repro.topology.machine import CpuSpec, homogeneous_metahost
from repro.topology.metacomputer import Metacomputer, Placement
from repro.topology.network import LinkClass, LinkSpec


def _machine(global_clock_on_second: bool) -> Metacomputer:
    ordinary = homogeneous_metahost(
        "ordinary", node_count=2, cpus_per_node=1,
        cpu=CpuSpec("c", 2.0),
        internal_latency_s=2e-5, internal_latency_jitter_s=8e-7,
    )
    synced = homogeneous_metahost(
        "synced", node_count=2, cpus_per_node=1,
        cpu=CpuSpec("c", 2.0),
        internal_latency_s=2e-5, internal_latency_jitter_s=8e-7,
        has_global_clock=global_clock_on_second,
    )
    link = LinkSpec(
        latency_s=1e-3, jitter_s=4e-6, bandwidth_bps=1.25e9,
        link_class=LinkClass.EXTERNAL, name="x",
    )
    return Metacomputer([ordinary, synced], external_links={(0, 1): link})


@pytest.fixture(scope="module")
def run():
    mc = _machine(global_clock_on_second=True)
    placement = Placement.block(mc, 4)
    runtime = MetaMPIRuntime(mc, placement, seed=13)
    return runtime.run(
        make_imbalance_app({r: 0.02 for r in range(4)}, iterations=5)
    )


class TestGlobalClockMetahost:
    def test_nodes_share_one_clock(self, run):
        clocks = run.clocks
        nodes = [n for n in clocks.nodes() if n.machine == 1]
        assert len(nodes) == 2
        assert clocks.clock(nodes[0]) is clocks.clock(nodes[1])

    def test_ordinary_metahost_nodes_differ(self, run):
        clocks = run.clocks
        nodes = [n for n in clocks.nodes() if n.machine == 0]
        assert clocks.clock(nodes[0]) is not clocks.clock(nodes[1])

    def test_sync_data_skips_slave_measurements(self, run):
        """Paper: 'In the case that a metahost already provides a global
        clock, this second step is omitted.'"""
        assert 1 in run.sync_data.global_clock_machines
        for node, record in run.sync_data.records.items():
            if node.machine == 1 and node != run.sync_data.local_masters[1]:
                assert record.local_start is None
                assert record.local_end is None

    def test_hierarchical_scheme_still_analyzes_cleanly(self, run):
        result = analyze_run(run, scheme=HierarchicalInterpolation())
        assert result.violations.violations == 0

    def test_synced_slaves_use_local_master_converter(self, run):
        scheme = HierarchicalInterpolation()
        converters = scheme.converters(run.sync_data)
        nodes = sorted(n for n in run.sync_data.records if n.machine == 1)
        assert converters[nodes[0]].convert(1.0) == pytest.approx(
            converters[nodes[1]].convert(1.0)
        )
