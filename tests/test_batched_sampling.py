"""Batched latency sampling: stream equivalence and golden end-to-end runs.

The batched :class:`~repro.topology.network.ExponentialJitterStream` exists
purely as a performance device; its contract is that a simulation driven by
it is *byte-identical* to one driven by scalar ``Generator.exponential``
calls on the same seeded stream.  The unit tests pin the stream-level
equivalence (including block refills and the :meth:`sync` rewind); the
golden tests run the full pipeline twice — once batched, once through a
scalar shim — and compare archive bytes and rendered analyses, for the
clean figure-6 workload and for a fault-injected degraded run, at
``jobs=1`` and ``jobs=4``.
"""

from __future__ import annotations

import hashlib
import warnings

import numpy as np
import pytest

import repro.sim.mpi as mpi_module
from repro.api import AnalysisRequest, analyze
from repro.apps.metatrace import make_metatrace_app
from repro.errors import TopologyError
from repro.experiments.configs import experiment1, scaled_experiment1
from repro.experiments.faults import escalating_fault_plans
from repro.report import render_analysis
from repro.sim.runtime import MetaMPIRuntime
from repro.topology.network import ExponentialJitterStream


class ScalarJitterShim:
    """Drop-in for ExponentialJitterStream that draws one sample at a time.

    This is the pre-batching behavior: every ``exponential`` call goes
    straight to the generator, and there is never an outstanding block to
    rewind.
    """

    def __init__(self, rng, block=1024):
        self._rng = rng

    def exponential(self, scale):
        return self._rng.exponential(scale)

    def sync(self):
        pass


def archive_digest(run):
    """One hash over every archive file of every metahost, in stable order."""
    h = hashlib.sha256()
    for machine in run.machines_used:
        reader = run.reader(machine)
        for name in sorted(reader.namespace.list_dir(reader.path)):
            h.update(name.encode())
            h.update(reader.namespace.read_file(f"{reader.path}/{name}"))
    return h.hexdigest()


class TestStreamEquivalence:
    def test_matches_scalar_draws_across_refills(self):
        batched = ExponentialJitterStream(np.random.default_rng(42), block=8)
        scalar = np.random.default_rng(42)
        scales = [0.5e-6, 2e-3, 1.0, 7.25][:]
        for i in range(50):  # crosses several block boundaries
            scale = scales[i % len(scales)]
            assert batched.exponential(scale) == scalar.exponential(scale)

    def test_sync_rewinds_to_scalar_position(self):
        rng = np.random.default_rng(7)
        stream = ExponentialJitterStream(rng, block=16)
        scalar = np.random.default_rng(7)
        for _ in range(5):  # consume a partial block
            assert stream.exponential(1.0) == scalar.exponential(1.0)
        stream.sync()
        # A post-run consumer sharing the generator (the offset-measurement
        # phase) must continue on the byte-identical stream.
        for _ in range(20):
            assert rng.uniform() == scalar.uniform()

    def test_sync_without_draws_is_noop(self):
        rng = np.random.default_rng(3)
        scalar = np.random.default_rng(3)
        ExponentialJitterStream(rng).sync()
        assert rng.uniform() == scalar.uniform()

    def test_rejects_nonpositive_block(self):
        with pytest.raises(TopologyError):
            ExponentialJitterStream(np.random.default_rng(0), block=0)


@pytest.mark.slow
class TestGoldenBatchedVsScalar:
    """Full-pipeline byte-identity of the batched sampler vs scalar draws."""

    def _figure6_run(self):
        metacomputer, placement, config = experiment1()
        runtime = MetaMPIRuntime(
            metacomputer, placement, seed=1, subcomms=config.subcomms()
        )
        return runtime.run(make_metatrace_app(config))

    def _fault_run(self):
        plan = escalating_fault_plans(1)[2]  # degraded-links+flaky-fs
        metacomputer, placement, config = scaled_experiment1(
            1, coupling_intervals=1
        )
        runtime = MetaMPIRuntime(
            metacomputer,
            placement,
            seed=1,
            subcomms=config.subcomms(),
            fault_plan=plan,
        )
        return runtime.run(make_metatrace_app(config))

    def test_figure6_seed1_byte_identical(self, monkeypatch):
        batched = self._figure6_run()
        monkeypatch.setattr(
            mpi_module, "ExponentialJitterStream", ScalarJitterShim
        )
        scalar = self._figure6_run()
        assert archive_digest(batched) == archive_digest(scalar)
        for jobs in (1, 4):
            request = AnalysisRequest(jobs=jobs)
            assert render_analysis(analyze(batched, request)) == render_analysis(
                analyze(scalar, request)
            )

    def test_fault_injected_degraded_byte_identical(self, monkeypatch):
        batched = self._fault_run()
        monkeypatch.setattr(
            mpi_module, "ExponentialJitterStream", ScalarJitterShim
        )
        scalar = self._fault_run()
        assert archive_digest(batched) == archive_digest(scalar)
        for jobs in (1, 4):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                request = AnalysisRequest(degraded=True, jobs=jobs)
                a = render_analysis(analyze(batched, request))
                b = render_analysis(analyze(scalar, request))
            assert a == b
