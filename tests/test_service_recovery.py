"""The service's crash-safety acceptance: SIGKILL recovery, graceful SIGTERM.

These tests drive the real ``repro serve`` process over HTTP.  The pinned
contract:

* every job accepted (acknowledged) before a SIGKILL is completed by a
  restarted service on the same store, and each recovered result is
  byte-identical to the result of an uninterrupted direct computation;
* a duplicate submission after recovery is served from cache without
  recomputation;
* SIGTERM drains gracefully: exit code 0, the store lock released.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request

import pytest

from repro.service.runners import execute_job
from repro.service.store import canonical_spec, job_key

#: The recovery workload: one analysis long enough to be killed mid-run
#: (~3 s) plus quick jobs that are still queued behind it at kill time.
JOB_SPECS = [
    {
        "kind": "analyze",
        "experiment": "figure6",
        "seed": 1,
        "jobs": 1,
        "config": {"coupling_intervals": 20},
    },
    {"kind": "simulate", "experiment": "imbalance", "seed": 1, "jobs": 1},
    {"kind": "simulate", "experiment": "imbalance", "seed": 2, "jobs": 1},
]


def _env():
    root = os.path.join(os.path.dirname(__file__), "..")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [os.path.join(root, "src")] + env.get("PYTHONPATH", "").split(os.pathsep)
    )
    return env


def _start_server(tmp_path, store):
    ready = tmp_path / f"ready-{time.monotonic_ns()}"
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", "0", "--store", str(store),
            "--ready-file", str(ready),
            "--pool-workers", "1", "--default-jobs", "1",
            "--drain-grace", "60",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=_env(),
    )
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        if ready.exists() and ready.read_text().strip():
            break
        if proc.poll() is not None:
            raise AssertionError(f"server died at startup:\n{proc.stdout.read()}")
        time.sleep(0.05)
    else:
        proc.kill()
        raise AssertionError("server never became ready")
    host, port = ready.read_text().strip().split(":")
    return proc, f"http://{host}:{port}"


def _request(base, method, path, body=None, timeout=30.0):
    data = json.dumps(body).encode("utf-8") if body is not None else None
    headers = {"Content-Type": "application/json"} if data else {}
    request = urllib.request.Request(
        base + path, data=data, method=method, headers=headers
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def _canonical_json(value):
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


@pytest.mark.slow
class TestCrashRecovery:
    def test_sigkilled_service_finishes_all_accepted_jobs_identically(self, tmp_path):
        store = tmp_path / "jobs.jsonl"
        keys = {}

        proc, base = _start_server(tmp_path, store)
        try:
            for spec in JOB_SPECS:
                status, body = _request(base, "POST", "/jobs", spec)
                assert status == 202, body
                keys[body["job"]["key"]] = spec

            # Wait until the long analysis is actually mid-run, then
            # SIGKILL the whole service — no chance to flush anything.
            deadline = time.monotonic() + 60
            saw_running = False
            while time.monotonic() < deadline and not saw_running:
                _, listing = _request(base, "GET", "/jobs")
                saw_running = any(j["status"] == "running" for j in listing["jobs"])
                time.sleep(0.02)
            assert saw_running, "no job ever reached running state"
        finally:
            proc.kill()
            proc.wait(timeout=30)

        # Restart on the same store: the journal is the only survivor.
        proc, base = _start_server(tmp_path, store)
        try:
            _, listing = _request(base, "GET", "/jobs")
            assert {j["key"] for j in listing["jobs"]} == set(keys)

            deadline = time.monotonic() + 300
            results = {}
            while time.monotonic() < deadline and len(results) < len(keys):
                for key in keys:
                    if key in results:
                        continue
                    status, body = _request(base, "GET", f"/jobs/{key}")
                    job = body["job"]
                    assert job["status"] != "failed", job["error"]
                    if job["status"] == "done":
                        results[key] = job["result"]
                time.sleep(0.1)
            assert len(results) == len(keys), "recovered jobs never all finished"

            # Byte-identical to an uninterrupted direct computation.
            for key, spec in keys.items():
                canonical = canonical_spec(spec, default_jobs=1)
                assert job_key(canonical) == key
                expected, _execution = execute_job(canonical)
                assert _canonical_json(results[key]) == _canonical_json(expected)

            # Idempotency across the crash: resubmitting is a cache hit.
            status, body = _request(base, "POST", "/jobs", JOB_SPECS[0])
            assert status == 200
            assert body["disposition"] == "cached"
            assert (
                _canonical_json(body["job"]["result"])
                == _canonical_json(results[job_key(canonical_spec(JOB_SPECS[0], default_jobs=1))])
            )
        finally:
            proc.send_signal(signal.SIGTERM)
            try:
                proc.wait(timeout=60)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(timeout=30)


@pytest.mark.slow
class TestGracefulShutdown:
    def test_sigterm_drains_and_releases_the_store(self, tmp_path):
        store = tmp_path / "jobs.jsonl"
        proc, base = _start_server(tmp_path, store)
        status, body = _request(
            base, "POST", "/jobs",
            {"kind": "simulate", "experiment": "imbalance", "seed": 7},
        )
        assert status == 202
        key = body["job"]["key"]
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            _, body = _request(base, "GET", f"/jobs/{key}")
            if body["job"]["status"] == "done":
                break
            time.sleep(0.05)
        assert body["job"]["status"] == "done"

        proc.send_signal(signal.SIGTERM)
        out, _ = proc.communicate(timeout=60)
        assert proc.returncode == 0
        assert "draining" in out and "stopped" in out

        # The lock is released: a successor opens the same store and
        # still serves the finished job from its journal.
        proc, base = _start_server(tmp_path, store)
        try:
            status, body = _request(base, "GET", f"/jobs/{key}/result")
            assert status == 200
            assert body["result"]["integrity_ok"] is True
        finally:
            proc.send_signal(signal.SIGTERM)
            proc.wait(timeout=60)
