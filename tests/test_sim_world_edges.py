"""Edge-case tests for the world, runtime, and metric hierarchy."""

import numpy as np
import pytest

from repro.analysis.patterns import METRICS, metric_by_name, metric_tree
from repro.errors import (
    ArchiveCreationAborted,
    MPIUsageError,
    PatternError,
    SimulationError,
)
from repro.fs.filesystem import private_namespaces
from repro.sim.mpi import World
from repro.sim.runtime import MetaMPIRuntime
from repro.topology.metacomputer import Placement
from repro.topology.presets import single_cluster


@pytest.fixture
def mc():
    return single_cluster(node_count=2, cpus_per_node=2)


def _noop(ctx):
    yield ctx.compute(0.001)


class TestWorldLifecycle:
    def test_double_launch_rejected(self, mc):
        world = World(mc, Placement.block(mc, 2), rng=np.random.default_rng(0))
        world.launch(_noop, seed=0)
        with pytest.raises(SimulationError, match="already launched"):
            world.launch(_noop, seed=0)

    def test_run_without_launch_rejected(self, mc):
        world = World(mc, Placement.block(mc, 2), rng=np.random.default_rng(0))
        with pytest.raises(SimulationError, match="nothing launched"):
            world.run()

    def test_max_events_backstop(self, mc):
        def spinner(ctx):
            while True:
                yield ctx.compute(0.0)

        world = World(
            mc, Placement.block(mc, 1), rng=np.random.default_rng(0), max_events=500
        )
        world.launch(spinner, seed=0)
        with pytest.raises(SimulationError, match="livelock"):
            world.run()

    def test_unknown_comm_id(self, mc):
        world = World(mc, Placement.block(mc, 2), rng=np.random.default_rng(0))
        with pytest.raises(MPIUsageError):
            world.comm_by_id(42)
        with pytest.raises(MPIUsageError):
            world.communicator("nope")

    def test_single_rank_collectives(self, mc):
        """Collectives on a one-member communicator complete immediately."""

        def app(ctx):
            yield ctx.comm.barrier()
            value = yield ctx.comm.allreduce(8, data="only")
            assert value == {0: "only"}
            got = yield ctx.comm.bcast(8, root=0, data="b")
            assert got == "b"

        world = World(mc, Placement.block(mc, 1), rng=np.random.default_rng(0))
        world.launch(app, seed=0)
        stats = world.run()
        assert stats.collectives == 3

    def test_mismatched_placement_rejected(self, mc):
        other = single_cluster(name="other", node_count=2, cpus_per_node=2)
        placement = Placement.block(other, 2)
        with pytest.raises(SimulationError):
            World(mc, placement, rng=np.random.default_rng(0))


class TestRuntimeEdges:
    def test_existing_archive_dir_aborts(self, mc):
        placement = Placement.block(mc, 2)
        namespaces = private_namespaces(mc.machine_names())
        namespaces[0].create_dir("/work/epik_experiment")
        runtime = MetaMPIRuntime(mc, placement, seed=0, namespaces=namespaces)
        with pytest.raises(ArchiveCreationAborted):
            runtime.run(_noop)

    def test_custom_archive_path(self, mc):
        placement = Placement.block(mc, 2)
        runtime = MetaMPIRuntime(
            mc, placement, seed=0, archive_path="/work/my_experiment"
        )
        run = runtime.run(_noop)
        assert run.reader(0).available_ranks() == [0, 1]

    def test_zero_event_app_still_archives(self, mc):
        def silent(ctx):
            return
            yield  # pragma: no cover

        placement = Placement.block(mc, 2)
        run = MetaMPIRuntime(mc, placement, seed=0).run(silent)
        assert run.reader(0).read_trace(0) == []


class TestMetricHierarchyStructure:
    def test_unique_names_and_displays(self):
        names = [m.name for m in METRICS]
        assert len(names) == len(set(names))
        displays = [m.display for m in METRICS]
        assert len(displays) == len(set(displays))

    def test_parents_exist_and_precede(self):
        seen = set()
        for metric in metric_tree():
            if metric.parent is not None:
                assert metric.parent in seen, metric.name
            seen.add(metric.name)

    def test_single_root(self):
        roots = [m for m in METRICS if m.parent is None]
        assert [m.name for m in roots] == ["time"]

    def test_lookup(self):
        assert metric_by_name("late-sender").display == "Late Sender"
        with pytest.raises(PatternError):
            metric_by_name("nope")

    def test_every_metric_has_description(self):
        assert all(m.description for m in METRICS)
