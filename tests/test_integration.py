"""Cross-module integration scenarios.

Each test exercises the full tool pipeline (simulate → trace → archive →
synchronize → replay → report) end to end, including the comparative
workflow of the paper's Section 5.
"""

import pytest

from repro.analysis.patterns import (
    GRID_WAIT_AT_BARRIER,
    LATE_SENDER,
    TIME,
    WAIT_AT_BARRIER,
)
from repro.analysis.replay import analyze_run
from repro.apps.imbalance import make_barrier_imbalance_app, make_imbalance_app
from repro.clocks.sync import SCHEMES
from repro.fs.filesystem import shared_namespace
from repro.report.algebra import canonicalize, diff
from repro.report.render import render_analysis
from repro.report.serialize import experiment_from_dict, experiment_to_dict
from repro.sim.runtime import MetaMPIRuntime
from repro.topology.metacomputer import Placement
from repro.topology.presets import uniform_metacomputer, viola_testbed

from tests.conftest import run_app


class TestFullPipeline:
    def test_viola_run_to_report(self):
        """A small heterogeneous run produces a coherent rendered report."""
        mc = viola_testbed()
        placement = Placement.from_counts(mc, [("FZJ-XD1", 2, 2), ("CAESAR", 2, 2)])
        work = {r: 0.02 for r in range(8)}
        run = run_app(mc, placement, _placement_app(work), seed=4)
        result = analyze_run(run)
        text = render_analysis(result, metric=WAIT_AT_BARRIER)
        assert "Wait at Barrier" in text
        assert "FZJ-XD1" in text or "CAESAR" in text

    def test_analysis_reads_only_local_archives(self):
        """Every rank's trace is consumed via its own metahost's mounts."""
        mc = uniform_metacomputer(metahost_count=3, node_count=2, cpus_per_node=1)
        placement = Placement.block(mc, 6)
        run = MetaMPIRuntime(mc, placement, seed=0).run(
            make_imbalance_app({r: 0.01 for r in range(6)})
        )
        assert run.archive_outcome.partial_archive_count == 3
        # Cross-check: no archive holds a foreign trace.
        for machine in run.machines_used:
            reader = run.reader(machine)
            own_ranks = set(placement.ranks_on_machine(machine))
            assert set(reader.available_ranks()) == own_ranks
        result = analyze_run(run)
        assert result.metric_total(TIME) > 0

    def test_same_workload_shared_vs_private_fs_same_analysis(self):
        """Archive layout must not change analysis results."""
        mc = uniform_metacomputer(metahost_count=2, node_count=2, cpus_per_node=1)
        placement = Placement.block(mc, 4)
        work = {0: 0.05, 1: 0.01, 2: 0.01, 3: 0.01}
        app = make_barrier_imbalance_app(work)
        private = MetaMPIRuntime(mc, placement, seed=1).run(app)
        shared = MetaMPIRuntime(
            mc,
            placement,
            seed=1,
            namespaces=shared_namespace(mc.machine_names()),
        ).run(app)
        a = analyze_run(private)
        b = analyze_run(shared)
        assert a.cube.data == b.cube.data

    def test_scheme_choice_changes_violations_not_structure(self):
        mc = uniform_metacomputer(metahost_count=2, node_count=2, cpus_per_node=1)
        placement = Placement.block(mc, 4)
        run = MetaMPIRuntime(mc, placement, seed=6, clock_drift_scale=5e-6).run(
            make_imbalance_app({r: 0.02 for r in range(4)}, iterations=30)
        )
        results = {s.name: analyze_run(run, scheme=s) for s in SCHEMES}
        # Structure (matched messages, total severity of TIME) identical…
        messages = {r.violations.total for r in results.values()}
        assert len(messages) == 1
        # …while violation counts may differ by scheme quality.
        assert (
            results["two-hierarchical-offsets"].violations.violations
            <= results["single-flat-offset"].violations.violations
        )


class TestComparativeWorkflow:
    """The Section-5 methodology: compare heterogeneous vs homogeneous."""

    def test_diff_localizes_the_improvement(self):
        mc = uniform_metacomputer(metahost_count=2, node_count=2, cpus_per_node=1)
        placement = Placement.block(mc, 4)
        hetero_work = {0: 0.1, 1: 0.1, 2: 0.01, 3: 0.01}
        homog_work = {r: 0.05 for r in range(4)}
        hetero = analyze_run(
            MetaMPIRuntime(mc, placement, seed=2).run(
                make_barrier_imbalance_app(hetero_work)
            )
        )
        homog = analyze_run(
            MetaMPIRuntime(mc, placement, seed=2).run(
                make_barrier_imbalance_app(homog_work)
            )
        )
        delta = diff(canonicalize(hetero, "hetero"), canonicalize(homog, "homog"))
        assert delta.metric_total(WAIT_AT_BARRIER) > 0.1
        assert delta.value_in_region(WAIT_AT_BARRIER, "MPI_Barrier") > 0.1

    def test_grid_severity_only_in_spanning_runs(self):
        # One CPU per node: 4 ranks span both metahosts in block placement.
        mc = uniform_metacomputer(metahost_count=2, node_count=2, cpus_per_node=1)
        work = {0: 0.1, 1: 0.1, 2: 0.01, 3: 0.01}
        spanning = analyze_run(
            run_app(mc, 4, make_barrier_imbalance_app(work), seed=3)
        )
        # Same workload confined to one metahost.
        placement = Placement.from_counts(mc, [("metahost0", 2, 1)])
        confined_run = MetaMPIRuntime(mc, placement, seed=3).run(
            make_barrier_imbalance_app(work)
        )
        confined = analyze_run(confined_run)
        assert spanning.metric_total(GRID_WAIT_AT_BARRIER) > 0.0
        assert confined.metric_total(GRID_WAIT_AT_BARRIER) == 0.0

    def test_round_trip_through_json_preserves_comparison(self):
        mc = uniform_metacomputer(metahost_count=2, node_count=2, cpus_per_node=1)
        work = {0: 0.05, 1: 0.01, 2: 0.01, 3: 0.01}
        result = analyze_run(run_app(mc, 4, make_barrier_imbalance_app(work)))
        data = canonicalize(result, "x")
        restored = experiment_from_dict(experiment_to_dict(data))
        assert restored.metric_total(LATE_SENDER) == pytest.approx(
            data.metric_total(LATE_SENDER)
        )


def _placement_app(work):
    def app_factory(w):
        return make_barrier_imbalance_app(w)

    return app_factory(work)


def run_app(mc, placement_or_n, app, seed=0):
    if isinstance(placement_or_n, int):
        placement = Placement.block(mc, placement_or_n)
    else:
        placement = placement_or_n
    return MetaMPIRuntime(mc, placement, seed=seed).run(app)
