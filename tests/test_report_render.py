"""Tests for the three-panel text rendering."""

import pytest

from repro.analysis.patterns import LATE_SENDER, TIME, WAIT_AT_BARRIER
from repro.analysis.replay import analyze_run
from repro.apps.imbalance import make_barrier_imbalance_app, make_imbalance_app
from repro.errors import ReportError
from repro.report.render import (
    render_analysis,
    render_call_tree,
    render_metric_tree,
    render_system_tree,
)
from repro.topology.presets import uniform_metacomputer

from tests.conftest import run_app


@pytest.fixture(scope="module")
def result():
    mc = uniform_metacomputer(metahost_count=2, node_count=2, cpus_per_node=1)
    work = {0: 0.01, 1: 0.15, 2: 0.01, 3: 0.01}
    run = run_app(mc, 4, make_imbalance_app(work, iterations=2))
    return analyze_run(run)


@pytest.fixture(scope="module")
def barrier_result():
    mc = uniform_metacomputer(metahost_count=2, node_count=2, cpus_per_node=1)
    work = {0: 0.15, 1: 0.15, 2: 0.01, 3: 0.01}
    run = run_app(mc, 4, make_barrier_imbalance_app(work))
    return analyze_run(run)


class TestMetricTree:
    def test_contains_display_names_and_percentages(self, result):
        text = render_metric_tree(result)
        assert "Late Sender" in text
        assert "Grid Late Sender" in text
        assert "%" in text

    def test_time_is_hundred_percent(self, result):
        first_line = render_metric_tree(result).splitlines()[0]
        assert "100.00%" in first_line and "Time" in first_line

    def test_min_pct_prunes(self, result):
        full = render_metric_tree(result)
        pruned = render_metric_tree(result, min_pct=99.0)
        assert len(pruned.splitlines()) < len(full.splitlines())


class TestCallTree:
    def test_names_appear(self, result):
        text = render_call_tree(result, LATE_SENDER)
        assert "ring" in text
        assert "MPI_Sendrecv" in text

    def test_empty_metric_handled(self, result):
        text = render_call_tree(result, "early-reduce")
        assert "no severity" in text

    def test_percentages_reference_metric_total(self, result):
        text = render_call_tree(result, TIME)
        # Root call paths together account for all of the metric.
        root_pcts = []
        for line in text.splitlines()[1:]:
            rest = line.split("%", 1)[1]
            indent = len(rest) - len(rest.lstrip(" "))
            if indent == 4:  # depth-1 nodes, i.e. call-tree roots
                root_pcts.append(float(line.split("%")[0].split()[-1]))
        assert sum(root_pcts) == pytest.approx(100.0, abs=0.1)


class TestSystemTree:
    def test_machine_node_process_levels(self, barrier_result):
        text = render_system_tree(barrier_result, WAIT_AT_BARRIER)
        assert "metahost1" in text
        assert "node" in text
        assert "process" in text

    def test_severity_on_fast_metahost(self, barrier_result):
        """Ranks 2,3 (metahost1) wait for slow metahost0."""
        text = render_system_tree(barrier_result, WAIT_AT_BARRIER)
        lines = [l for l in text.splitlines() if "metahost" in l]
        by_name = {}
        for line in lines:
            pct = float(line.split("%")[0].split()[-1])
            name = line.split("%")[1].split("[")[0].strip()
            by_name[name] = pct
        assert by_name["metahost1"] > 90.0

    def test_restricted_to_callpath(self, result):
        cpid, _ = result.cube.top_callpaths(LATE_SENDER, 1)[0]
        text = render_system_tree(result, LATE_SENDER, cpid=cpid)
        assert f"at call path {cpid}" in text

    def test_empty_distribution(self, result):
        text = render_system_tree(result, "early-reduce")
        assert "no severity" in text


class TestFullReport:
    def test_sections_present(self, result):
        text = render_analysis(result, metric=LATE_SENDER)
        assert "analysis report" in text
        assert "clock-condition violations" in text
        assert "call tree" in text
        assert "system tree" in text

    def test_metric_optional(self, result):
        text = render_analysis(result)
        assert "call tree" not in text

    def test_unknown_metric_rejected(self, result):
        with pytest.raises(ReportError):
            render_analysis(result, metric="not-a-metric")
