"""Tests for the metacomputing-enabled measurement runtime."""

import pytest

from repro.clocks.clock import ClockEnsemble
from repro.errors import ConfigurationError
from repro.fs.filesystem import shared_namespace
from repro.ids import NodeId
from repro.sim.runtime import MetaMPIRuntime
from repro.topology.metacomputer import Placement
from repro.topology.presets import uniform_metacomputer


def _simple_app(ctx):
    with ctx.region("main"):
        yield ctx.compute(0.01)
        yield ctx.comm.barrier()


@pytest.fixture
def mc():
    return uniform_metacomputer(metahost_count=2, node_count=2, cpus_per_node=2)


@pytest.fixture
def run(mc):
    placement = Placement.block(mc, 6)
    return MetaMPIRuntime(mc, placement, seed=3).run(_simple_app)


class TestRunResult:
    def test_every_rank_has_a_trace(self, run):
        for rank in range(6):
            machine = run.placement.machine_of(rank)
            assert run.reader(machine).has_trace(rank)

    def test_partial_archives_without_shared_fs(self, run):
        # Two metahosts, private file systems: two physical archives.
        assert run.archive_outcome.partial_archive_count == 2

    def test_traces_only_on_own_metahost(self, run):
        # Rank 0 lives on machine 0; machine 1's archive must not hold it.
        reader1 = run.reader(1)
        assert not reader1.has_trace(0)
        assert reader1.has_trace(5)

    def test_definitions_replicated_per_archive(self, run):
        defs0 = run.reader(0).definitions()
        defs1 = run.reader(1).definitions()
        assert defs0.machine_names == defs1.machine_names
        assert defs0.locations == defs1.locations

    def test_sync_data_covers_all_nodes_in_use(self, run):
        nodes = set(run.placement.ranks_by_node())
        assert set(run.sync_data.records) == nodes

    def test_master_node_is_rank_zero_node(self, run):
        assert run.sync_data.master_node == run.placement.slot(0).node

    def test_metahost_env_vars_set(self, mc):
        """The paper's two identification variables reach every process."""
        seen = {}

        def app(ctx):
            seen[ctx.rank] = (ctx.metahost_id, ctx.metahost_name)
            yield ctx.comm.barrier()

        placement = Placement.block(mc, 6)
        MetaMPIRuntime(mc, placement, seed=0).run(app)
        assert seen[0] == (0, "metahost0")
        assert seen[5] == (1, "metahost1")

    def test_trace_bytes_accounted(self, run):
        assert run.total_trace_bytes == sum(run.trace_bytes.values())
        assert all(size > 0 for size in run.trace_bytes.values())


class TestConfiguration:
    def test_shared_namespace_gives_single_archive(self, mc):
        placement = Placement.block(mc, 6)
        namespaces = shared_namespace(mc.machine_names())
        run = MetaMPIRuntime(
            mc, placement, seed=0, namespaces=namespaces
        ).run(_simple_app)
        assert run.archive_outcome.partial_archive_count == 1
        # With a global file system every reader sees every trace.
        assert run.reader(1).has_trace(0)

    def test_explicit_clocks_used(self, mc):
        placement = Placement.block(mc, 2)
        clocks = ClockEnsemble.synchronized([NodeId(0, 0)])
        runtime = MetaMPIRuntime(mc, placement, seed=0, clocks=clocks)
        run = runtime.run(_simple_app)
        assert run.clocks is clocks

    def test_missing_clock_rejected(self, mc):
        placement = Placement.block(mc, 6)  # uses nodes on both machines
        clocks = ClockEnsemble.synchronized([NodeId(0, 0)])
        with pytest.raises(ConfigurationError):
            MetaMPIRuntime(mc, placement, seed=0, clocks=clocks)

    def test_missing_namespace_rejected(self, mc):
        placement = Placement.block(mc, 6)
        namespaces = {0: shared_namespace(["a"])[0]}
        with pytest.raises(ConfigurationError):
            MetaMPIRuntime(mc, placement, seed=0, namespaces=namespaces)

    def test_subcomms_created(self, mc):
        placement = Placement.block(mc, 4)
        seen = {}

        def app(ctx):
            sub = ctx.get_comm("pair")
            seen[ctx.rank] = None if sub is None else sub.size
            if sub is not None:
                yield sub.barrier()
            else:
                yield ctx.compute(0.001)

        MetaMPIRuntime(
            mc, placement, seed=0, subcomms={"pair": [1, 2]}
        ).run(app)
        assert seen == {0: None, 1: 2, 2: 2, 3: None}

    def test_determinism_across_runtimes(self, mc):
        placement = Placement.block(mc, 6)
        a = MetaMPIRuntime(mc, placement, seed=9).run(_simple_app)
        b = MetaMPIRuntime(mc, placement, seed=9).run(_simple_app)
        assert a.stats.finish_time == b.stats.finish_time
        assert a.trace_bytes == b.trace_bytes
