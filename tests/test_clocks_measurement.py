"""Tests for the remote-clock-reading offset measurement."""

import numpy as np
import pytest

from repro.clocks.clock import LinearClock, perfect_clock
from repro.clocks.measurement import (
    OffsetMeasurementConfig,
    measure_offset,
)
from repro.errors import MeasurementError
from repro.ids import NodeId
from repro.topology.network import LatencyModel, LinkSpec

A = NodeId(0, 0)
B = NodeId(1, 0)


def _link(jitter_s=1e-6, latency_s=1e-4, **kwargs):
    return LatencyModel(
        LinkSpec(latency_s=latency_s, jitter_s=jitter_s, bandwidth_bps=1e9, **kwargs)
    )


class TestConfig:
    def test_rejects_zero_exchanges(self):
        with pytest.raises(MeasurementError):
            OffsetMeasurementConfig(exchanges=0)

    def test_rejects_negative_payload(self):
        with pytest.raises(MeasurementError):
            OffsetMeasurementConfig(payload_bytes=-1)


class TestMeasureOffset:
    def test_self_measurement_is_exact(self, rng):
        m = measure_offset(A, A, perfect_clock(), perfect_clock(), _link(), 0.0, rng)
        assert m.offset_s == 0.0
        assert m.rtt_s == 0.0
        assert m.error_s == 0.0

    def test_recovers_static_offset(self, rng):
        slave = LinearClock(offset_s=5e-3)
        master = perfect_clock()
        m = measure_offset(B, A, slave, master, _link(), 0.0, rng)
        assert m.offset_s == pytest.approx(5e-3, abs=5e-6)
        assert abs(m.error_s) < 5e-6

    def test_error_bounded_by_rtt(self, rng):
        slave = LinearClock(offset_s=-2e-3, drift=1e-6)
        m = measure_offset(B, A, slave, perfect_clock(), _link(), 10.0, rng)
        assert abs(m.error_s) <= m.rtt_s / 2 + 1e-9

    def test_more_exchanges_reduce_error(self, rng):
        slave = LinearClock(offset_s=1e-3)
        link = _link(jitter_s=2e-5)
        few = [
            abs(
                measure_offset(
                    B, A, slave, perfect_clock(), link, float(k), rng,
                    OffsetMeasurementConfig(exchanges=1),
                ).error_s
            )
            for k in range(200)
        ]
        many = [
            abs(
                measure_offset(
                    B, A, slave, perfect_clock(), link, 1000.0 + k, rng,
                    OffsetMeasurementConfig(exchanges=16),
                ).error_s
            )
            for k in range(200)
        ]
        assert np.mean(many) < np.mean(few)

    def test_higher_jitter_means_larger_error(self, rng):
        slave = LinearClock(offset_s=1e-3)
        quiet = [
            abs(
                measure_offset(
                    B, A, slave, perfect_clock(), _link(jitter_s=3e-7), float(k), rng
                ).error_s
            )
            for k in range(200)
        ]
        noisy = [
            abs(
                measure_offset(
                    B, A, slave, perfect_clock(), _link(jitter_s=3e-5), float(k), rng
                ).error_s
            )
            for k in range(200)
        ]
        assert np.mean(noisy) > np.mean(quiet)

    def test_congestion_bias_survives_min_rtt_selection(self, rng):
        """Within one congested window the error is systematically large."""
        link = _link(
            jitter_s=1e-6,
            congestion_prob=1.0,
            congestion_scale_s=5e-5,
        )
        # Direction strings differ, so forward/backward biases differ and
        # their half-difference cannot be filtered out by min-RTT.
        slave = LinearClock(offset_s=0.0)
        errors = [
            abs(
                measure_offset(
                    B, A, slave, perfect_clock(), link, 4.0 * k, rng
                ).error_s
            )
            for k in range(100)
        ]
        assert np.mean(errors) > 5e-6  # far above the 1 µs jitter floor

    def test_true_offset_recorded(self, rng):
        slave = LinearClock(offset_s=2e-3, drift=3e-6)
        m = measure_offset(B, A, slave, perfect_clock(), _link(), 50.0, rng)
        expected = slave.offset_to(perfect_clock(), 50.0)
        assert m.true_offset_s == pytest.approx(expected, abs=1e-6)

    def test_reference_anchor_consistency(self, rng):
        """offset ≈ slave_local − reference_local at the same instant."""
        slave = LinearClock(offset_s=7e-3)
        m = measure_offset(B, A, slave, perfect_clock(), _link(), 0.0, rng)
        assert m.offset_s == pytest.approx(m.slave_local_s - m.reference_local_s)
