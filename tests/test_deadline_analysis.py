"""End-to-end deadline propagation through the analysis layers.

The acceptance shape of the deadline tentpole: an analysis given a
budget of ``D`` seconds against wedged workers returns a *partial* result
(severity so far, honest per-rank completeness, ``TimeBudgetExceeded`` in
the record) within ``D + grace`` — it never hangs and never dies — while
an analysis with no deadline (or a generous one) stays byte-identical to
the unbudgeted run.
"""

from __future__ import annotations

import time

import pytest

from repro.analysis.parallel import ParallelReplayAnalyzer
from repro.analysis.request import AnalysisRequest
from repro.api import analyze
from repro.errors import AnalysisError, TimeBudgetExceeded
from repro.resilience import Deadline

from tests.test_parallel_analysis import assert_identical
from tests.test_resilience_pool import _fast_config, _hang, _small_run


class TestRequestField:
    def test_deadline_must_be_positive(self):
        with pytest.raises(AnalysisError, match="deadline_s must be positive"):
            AnalysisRequest(deadline_s=0)
        with pytest.raises(AnalysisError, match="deadline_s must be positive"):
            AnalysisRequest(deadline_s=-3)

    def test_default_deadline_keeps_job_keys_stable(self):
        # deadline_s=None must not appear in to_config(), or every
        # content-addressed job key minted before this field existed
        # would change.
        assert "deadline_s" not in AnalysisRequest().to_config()
        assert AnalysisRequest(deadline_s=5.0).to_config()["deadline_s"] == 5.0


class TestSerialDeadline:
    def test_generous_deadline_is_byte_identical(self):
        run = _small_run()
        plain = analyze(run)
        budgeted = analyze(run, AnalysisRequest(deadline_s=300.0))
        assert budgeted.interrupted is None
        assert_identical(plain, budgeted)

    def test_cancelled_deadline_returns_partial(self):
        run = _small_run()
        deadline = Deadline(3600.0)
        deadline.cancel("cancelled by client")
        result = analyze(run, deadline=deadline)
        assert result.interrupted == "cancelled by client"
        assert result.degraded  # partials settle degraded-style
        # Honest completeness: every analyzed rank says how far it got.
        assert result.completeness
        for entry in result.completeness.values():
            assert not entry.complete
            assert "TimeBudgetExceeded" in entry.error
            assert 0.0 <= entry.completeness <= 1.0

    def test_tiny_budget_interrupts_mid_stream(self):
        run = _small_run()
        result = analyze(run, AnalysisRequest(deadline_s=1e-9))
        assert result.interrupted is not None
        assert "deadline of" in result.interrupted


class TestParallelDeadline:
    def test_wedged_workers_bounded_by_deadline(self, tmp_path):
        """The acceptance criterion: deadline D against wedged workers →
        partial result within D + grace, never a hang."""
        run = _small_run()
        analyzer = ParallelReplayAnalyzer(
            {m: run.reader(m) for m in run.machines_used},
            jobs=4,
            # Workers hang forever; timeout_s would allow 60s — only the
            # deadline can bound the run.
            pool_config=_fast_config(
                max_workers=4, timeout_s=60.0, max_retries=0, chaos_hook=_hang
            ),
            deadline=Deadline(3.0),
        )
        began = time.monotonic()
        try:
            result = analyzer.analyze()
            interrupted = result.interrupted
            completeness = result.completeness
        except TimeBudgetExceeded as exc:
            # Zero shards settled — equally acceptable, equally bounded.
            interrupted = exc.reason
            completeness = None
        elapsed = time.monotonic() - began
        assert elapsed < 3.0 + 15.0, f"took {elapsed:.1f}s, deadline was 3s"
        assert interrupted is not None and "deadline of 3.0s" in interrupted
        if completeness is not None:
            unfinished = [
                entry
                for entry in completeness.values()
                if not entry.analyzed
            ]
            assert unfinished, "some shard should have been cut off"
            assert all(
                "TimeBudgetExceeded" in entry.error for entry in unfinished
            )

    def test_generous_parallel_deadline_is_byte_identical(self):
        run = _small_run()
        plain = analyze(run, AnalysisRequest(jobs=4))
        budgeted = analyze(run, AnalysisRequest(jobs=4, deadline_s=300.0))
        assert budgeted.interrupted is None
        assert_identical(plain, budgeted)


class TestExperimentDeadline:
    def test_run_experiment_shares_one_budget(self):
        # A pre-cancelled deadline handed to run_experiment must stop the
        # whole experiment, not one phase of it.
        from repro.api import run_experiment

        deadline = Deadline(3600.0)
        deadline.cancel("operator stop")
        result = run_experiment(
            "figure4", AnalysisRequest(jobs=1), seed=3, deadline=deadline
        )
        # figure4's analyze() phases observe the dead budget and settle
        # partial; the rendered text still comes back (degraded-style).
        assert isinstance(result, str)
