"""The stable ``repro.api`` facade: surface snapshot, verbs, deprecations."""

from __future__ import annotations

import os
import subprocess
import sys
import warnings

import pytest

import repro
import repro.api as api
from repro.apps.imbalance import make_imbalance_app
from repro.errors import ExperimentError
from repro.topology.metacomputer import Placement
from repro.topology.presets import uniform_metacomputer

#: The compatibility contract.  A failure here means the public surface
#: changed — that must be a deliberate, documented decision (docs/API.md),
#: not a side effect.  Update this snapshot only together with the docs.
API_SURFACE_SNAPSHOT = [
    "AnalysisRequest",
    "AnalysisResult",
    "CheckpointJournal",
    "DEFAULT_SEEDS",
    "Deadline",
    "EXPERIMENTS",
    "ExecutionReport",
    "JobStore",
    "Metacomputer",
    "Placement",
    "RunResult",
    "ServiceConfig",
    "SeverityTimeline",
    "TimeBudgetExceeded",
    "analyze",
    "create_app",
    "ibm_aix_power",
    "render_analysis",
    "resolve_jobs",
    "run_checks",
    "run_experiment",
    "serve",
    "simulate",
    "single_cluster",
    "uniform_metacomputer",
    "verify_archives",
    "viola_testbed",
]


class TestSurface:
    def test_all_matches_snapshot(self):
        assert sorted(api.__all__) == API_SURFACE_SNAPSHOT

    def test_every_name_importable(self):
        for name in api.__all__:
            assert getattr(api, name) is not None

    def test_reexported_from_package_root(self):
        for name in ("simulate", "analyze", "run_experiment", "resolve_jobs"):
            assert getattr(repro, name) is getattr(api, name)

    def test_experiments_and_seeds_agree(self):
        assert set(api.EXPERIMENTS) == set(api.DEFAULT_SEEDS)


class TestVerbs:
    @pytest.fixture(scope="class")
    def small_run(self):
        mc = uniform_metacomputer(metahost_count=2, node_count=2, cpus_per_node=1)
        work = {0: 0.01, 1: 0.02, 2: 0.01, 3: 0.01}
        return api.simulate(
            make_imbalance_app(work, iterations=2),
            mc,
            Placement.block(mc, 4),
            seed=9,
        )

    def test_simulate_returns_run_result(self, small_run):
        assert isinstance(small_run, api.RunResult)
        assert small_run.definitions.world_size == 4

    def test_analyze_serial_and_parallel_agree(self, small_run):
        serial = api.analyze(small_run)
        parallel = api.analyze(small_run, api.AnalysisRequest(jobs=2))
        assert isinstance(serial, api.AnalysisResult)
        assert serial.cube.data == parallel.cube.data

    def test_run_experiment_unknown_name(self):
        with pytest.raises(ExperimentError, match="unknown experiment"):
            api.run_experiment("figure99")

    def test_run_experiment_table3(self):
        text = api.run_experiment("table3")
        assert "Experiment 1" in text and "Experiment 2" in text

    def test_run_experiment_figure4_with_jobs(self):
        assert api.run_experiment(
            "figure4", api.AnalysisRequest(jobs=2), seed=3
        ) == api.run_experiment("figure4", api.AnalysisRequest(jobs=1), seed=3)


class TestDeprecations:
    def test_positional_experiment_number_warns(self):
        from repro.experiments.figures import run_metatrace_experiment

        with pytest.warns(DeprecationWarning, match="figure= keyword"):
            with pytest.raises(ExperimentError):
                # Invalid experiment number: warns on the calling style
                # first, then rejects the value — no simulation runs.
                run_metatrace_experiment(99)

    def test_figure_keyword_does_not_warn(self):
        from repro.experiments.figures import run_metatrace_experiment

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            with pytest.raises(ExperimentError):
                run_metatrace_experiment(figure=99)

    def test_both_forms_rejected(self):
        from repro.experiments.figures import run_metatrace_experiment

        with pytest.raises(ExperimentError, match="not both"):
            run_metatrace_experiment(1, figure=1)

    def test_neither_form_rejected(self):
        from repro.experiments.figures import run_metatrace_experiment

        with pytest.raises(ExperimentError, match="figure=1 or figure=2"):
            run_metatrace_experiment()


class TestPythonDashM:
    def _run(self, *argv: str) -> subprocess.CompletedProcess:
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        return subprocess.run(
            [sys.executable, "-m", "repro", *argv],
            capture_output=True,
            text=True,
            env=env,
            timeout=300,
        )

    def test_module_entry_point(self):
        proc = self._run("table3")
        assert proc.returncode == 0, proc.stderr
        assert "Experiment 1" in proc.stdout

    def test_jobs_flag_accepted(self):
        proc = self._run("figure4", "--seed", "3", "--jobs", "2")
        assert proc.returncode == 0, proc.stderr
        assert "Late Sender" in proc.stdout

    def test_cli_module_alias_still_works(self):
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-m", "repro.cli", "table3"],
            capture_output=True,
            text=True,
            env=env,
            timeout=300,
        )
        assert proc.returncode == 0, proc.stderr
        assert "Experiment 1" in proc.stdout
